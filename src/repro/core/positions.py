"""Real-time population position feeds.

The dispatch center tracks people through their cellphone GPS (Section
IV-A); in the reproduction that feed is the map-matched trajectory set of
the evaluation trace.  ``PopulationFeed`` answers "where is everyone right
now" with per-cycle caching, since several consumers (the SVM predictor,
metrics) ask at the same timestamps.

``HistoricalFallbackFeed`` implements the paper's Section IV-C5 extension:
"Under severe situations, the GPS locations of some people may not be
readily available.  We can refer to these people's historical GPS data to
analyze the home address / work address / preferred driving pattern and
estimate the approximate position."  When a person's last fix is older
than a staleness bound, their position is estimated from their historical
hour-of-day pattern (most-visited landmark at this hour over the
pre-disaster days).

``DegradedPositionFeed`` overlays injected GPS outages (``repro.faults``)
on any inner feed: people inside an outage window lose their fresh fix
and either fall back to the historical estimate or drop out of the
snapshot, exactly as the dispatch center would experience it.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, defaultdict
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.mobility.mapmatch import MatchedTrajectories
from repro.weather.storms import SECONDS_PER_DAY, SECONDS_PER_HOUR

if TYPE_CHECKING:
    from repro.faults.models import FaultInjector

#: Any callable position feed: ``t_seconds -> {person_id: landmark}``.
PositionFeed = Callable[[float], dict[int, int]]


class _QueryCache:
    """Small LRU of per-timestamp query results.

    One :class:`collections.OrderedDict` holds both the mapping and the
    recency order, so entries can never desynchronise (the previous
    parallel list + dict could, on duplicate timestamps) and eviction is
    O(1) instead of an O(n) ``list.pop(0)``.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("cache_size must be positive")
        self._size = size
        self._entries: OrderedDict[float, dict[int, int]] = OrderedDict()

    def get(self, key: float) -> dict[int, int] | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: float, value: dict[int, int]) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self._size:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class PopulationFeed:
    """Callable ``t_seconds -> {person_id: landmark}`` over a matched trace."""

    def __init__(self, matched: MatchedTrajectories, cache_size: int = 8) -> None:
        self.matched = matched
        self._cache = _QueryCache(cache_size)

    def __call__(self, t_seconds: float) -> dict[int, int]:
        cached = self._cache.get(t_seconds)
        if cached is not None:
            return cached
        positions = self.matched.nodes_at_time(t_seconds)
        self._cache.put(t_seconds, positions)
        return positions


class HistoricalFallbackFeed:
    """Position feed with historical-pattern estimation for stale devices.

    For each person, an hour-of-day habit profile is built from their fixes
    over a reference window (typically the pre-disaster days): the landmark
    they most often occupy at each hour.  At query time, a person whose
    latest fix is older than ``staleness_s`` (dead phone, no coverage) is
    placed at their habitual landmark for the current hour instead of their
    last known position.
    """

    def __init__(
        self,
        matched: MatchedTrajectories,
        history_start_s: float,
        history_end_s: float,
        staleness_s: float = 6.0 * SECONDS_PER_HOUR,
        cache_size: int = 8,
    ) -> None:
        if history_end_s <= history_start_s:
            raise ValueError("history window must be non-empty")
        if staleness_s <= 0:
            raise ValueError("staleness bound must be positive")
        self.matched = matched
        self.staleness_s = float(staleness_s)
        self._habits = self._build_habits(history_start_s, history_end_s)
        self._cache = _QueryCache(cache_size)
        #: Query-time statistics, for observability.
        self.fallback_uses = 0

    def _build_habits(self, t0: float, t1: float) -> dict[int, dict[int, int]]:
        """person -> {hour_of_day: habitual landmark} over [t0, t1]."""
        habits: dict[int, dict[int, int]] = {}
        for pid, (ts, nodes) in self.matched.trajectories.items():
            lo = int(np.searchsorted(ts, t0, side="left"))
            hi = int(np.searchsorted(ts, t1, side="right"))
            if hi <= lo:
                continue
            per_hour: dict[int, Counter] = defaultdict(Counter)
            for t, node in zip(ts[lo:hi], nodes[lo:hi]):
                hour = int((t % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
                per_hour[hour][int(node)] += 1
            habits[pid] = {
                hour: counter.most_common(1)[0][0] for hour, counter in per_hour.items()
            }
        return habits

    def habitual_node(self, pid: int, t_seconds: float) -> int | None:
        """The person's habitual landmark at this hour of day, searching
        neighbouring hours when the exact hour has no history."""
        habit = self._habits.get(pid)
        if not habit:
            return None
        hour = int((t_seconds % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        for delta in range(0, 13):
            for h in ((hour - delta) % 24, (hour + delta) % 24):
                if h in habit:
                    return habit[h]
        return None

    def __call__(self, t_seconds: float) -> dict[int, int]:
        cached = self._cache.get(t_seconds)
        if cached is not None:
            return cached
        out: dict[int, int] = {}
        for pid, (ts, nodes) in self.matched.trajectories.items():
            i = int(np.searchsorted(ts, t_seconds, side="right")) - 1
            if i < 0:
                continue
            if t_seconds - float(ts[i]) > self.staleness_s:
                estimated = self.habitual_node(pid, t_seconds)
                if estimated is not None:
                    out[pid] = estimated
                    self.fallback_uses += 1
                    continue
            out[pid] = int(nodes[i])
        self._cache.put(t_seconds, out)
        return out


class DegradedPositionFeed:
    """A position feed seen through injected GPS outages.

    While a person is inside one of their sampled outage windows the
    dispatch center has no fresh fix for them.  If the inner feed knows
    historical habits (:class:`HistoricalFallbackFeed`), the person is
    placed at their habitual hour-of-day landmark — the paper's Section
    IV-C5 degraded-sensing path; otherwise the person is withheld from
    the snapshot entirely, so the predictor plans only on what the
    dispatch center would actually see.

    Results are not cached here: the inner feed caches its own answers,
    and the outage overlay is a cheap per-person membership test.
    """

    def __init__(self, inner: PositionFeed, faults: "FaultInjector") -> None:
        self.inner = inner
        self.faults = faults
        #: People placed at their historical estimate so far.
        self.fallback_uses = 0
        #: People withheld (stale fix, no history to fall back on).
        self.stale_drops = 0

    def habitual_node(self, pid: int, t_seconds: float) -> int | None:
        """Delegate so stacked wrappers keep the fallback path."""
        inner_habitual = getattr(self.inner, "habitual_node", None)
        if inner_habitual is None:
            return None
        return inner_habitual(pid, t_seconds)

    def __call__(self, t_seconds: float) -> dict[int, int]:
        base = self.inner(t_seconds)
        inner_habitual = getattr(self.inner, "habitual_node", None)
        out: dict[int, int] = {}
        for pid, node in base.items():
            if not self.faults.gps_stale(pid, t_seconds):
                out[pid] = node
                continue
            estimated = inner_habitual(pid, t_seconds) if inner_habitual else None
            if estimated is None:
                self.stale_drops += 1
            else:
                out[pid] = estimated
                self.fallback_uses += 1
        return out

"""Real-time population position feeds.

The dispatch center tracks people through their cellphone GPS (Section
IV-A); in the reproduction that feed is the map-matched trajectory set of
the evaluation trace.  ``PopulationFeed`` answers "where is everyone right
now" with per-cycle caching, since several consumers (the SVM predictor,
metrics) ask at the same timestamps.

``HistoricalFallbackFeed`` implements the paper's Section IV-C5 extension:
"Under severe situations, the GPS locations of some people may not be
readily available.  We can refer to these people's historical GPS data to
analyze the home address / work address / preferred driving pattern and
estimate the approximate position."  When a person's last fix is older
than a staleness bound, their position is estimated from their historical
hour-of-day pattern (most-visited landmark at this hour over the
pre-disaster days).
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from repro.mobility.mapmatch import MatchedTrajectories
from repro.weather.storms import SECONDS_PER_DAY, SECONDS_PER_HOUR


class PopulationFeed:
    """Callable ``t_seconds -> {person_id: landmark}`` over a matched trace."""

    def __init__(self, matched: MatchedTrajectories, cache_size: int = 8) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self.matched = matched
        self._cache: dict[float, dict[int, int]] = {}
        self._cache_order: list[float] = []
        self._cache_size = cache_size

    def __call__(self, t_seconds: float) -> dict[int, int]:
        if t_seconds in self._cache:
            return self._cache[t_seconds]
        positions = self.matched.nodes_at_time(t_seconds)
        self._cache[t_seconds] = positions
        self._cache_order.append(t_seconds)
        if len(self._cache_order) > self._cache_size:
            oldest = self._cache_order.pop(0)
            self._cache.pop(oldest, None)
        return positions


class HistoricalFallbackFeed:
    """Position feed with historical-pattern estimation for stale devices.

    For each person, an hour-of-day habit profile is built from their fixes
    over a reference window (typically the pre-disaster days): the landmark
    they most often occupy at each hour.  At query time, a person whose
    latest fix is older than ``staleness_s`` (dead phone, no coverage) is
    placed at their habitual landmark for the current hour instead of their
    last known position.
    """

    def __init__(
        self,
        matched: MatchedTrajectories,
        history_start_s: float,
        history_end_s: float,
        staleness_s: float = 6.0 * SECONDS_PER_HOUR,
        cache_size: int = 8,
    ) -> None:
        if history_end_s <= history_start_s:
            raise ValueError("history window must be non-empty")
        if staleness_s <= 0:
            raise ValueError("staleness bound must be positive")
        self.matched = matched
        self.staleness_s = float(staleness_s)
        self._habits = self._build_habits(history_start_s, history_end_s)
        self._cache: dict[float, dict[int, int]] = {}
        self._cache_order: list[float] = []
        self._cache_size = cache_size
        #: Query-time statistics, for observability.
        self.fallback_uses = 0

    def _build_habits(self, t0: float, t1: float) -> dict[int, dict[int, int]]:
        """person -> {hour_of_day: habitual landmark} over [t0, t1]."""
        habits: dict[int, dict[int, int]] = {}
        for pid, (ts, nodes) in self.matched.trajectories.items():
            lo = int(np.searchsorted(ts, t0, side="left"))
            hi = int(np.searchsorted(ts, t1, side="right"))
            if hi <= lo:
                continue
            per_hour: dict[int, Counter] = defaultdict(Counter)
            for t, node in zip(ts[lo:hi], nodes[lo:hi]):
                hour = int((t % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
                per_hour[hour][int(node)] += 1
            habits[pid] = {
                hour: counter.most_common(1)[0][0] for hour, counter in per_hour.items()
            }
        return habits

    def habitual_node(self, pid: int, t_seconds: float) -> int | None:
        """The person's habitual landmark at this hour of day, searching
        neighbouring hours when the exact hour has no history."""
        habit = self._habits.get(pid)
        if not habit:
            return None
        hour = int((t_seconds % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        for delta in range(0, 13):
            for h in ((hour - delta) % 24, (hour + delta) % 24):
                if h in habit:
                    return habit[h]
        return None

    def __call__(self, t_seconds: float) -> dict[int, int]:
        if t_seconds in self._cache:
            return self._cache[t_seconds]
        out: dict[int, int] = {}
        for pid, (ts, nodes) in self.matched.trajectories.items():
            i = int(np.searchsorted(ts, t_seconds, side="right")) - 1
            if i < 0:
                continue
            if t_seconds - float(ts[i]) > self.staleness_s:
                estimated = self.habitual_node(pid, t_seconds)
                if estimated is not None:
                    out[pid] = estimated
                    self.fallback_uses += 1
                    continue
            out[pid] = int(nodes[i])
        self._cache[t_seconds] = out
        self._cache_order.append(t_seconds)
        if len(self._cache_order) > self._cache_size:
            self._cache.pop(self._cache_order.pop(0), None)
        return out

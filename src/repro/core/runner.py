"""Supervised execution of long-running work (training, sweeps).

MobiRescue's models are trained *before* a disaster and must come back up
under pressure.  The supervisor here treats a long run the way the
dispatch pipeline (PR 1) treats a dispatch cycle: failures are expected,
bounded, and recovered from —

* each attempt runs under an optional wall-clock **deadline**;
* transient failures are retried with **exponential backoff + jitter**
  (seeded, so tests are deterministic);
* between attempts, recovery restarts from the **latest valid
  checkpoint** — corrupt or partially written checkpoints are detected by
  the integrity manifest, quarantined, and skipped;
* every recovery, timeout and quarantine is recorded as an
  :class:`Incident` and logged under ``repro.core.runner``.

:func:`supervised_training` wires the supervisor to
:func:`repro.core.training.train_mobirescue` /
:func:`~repro.core.training.resume_training`.
"""

from __future__ import annotations

import logging
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, TypeVar

import numpy as np

if TYPE_CHECKING:  # circular at runtime: training imports this module's users
    from repro.core.config import MobiRescueConfig
    from repro.core.training import TrainedMobiRescue
    from repro.data.charlotte import CharlotteScenario
    from repro.mobility.generator import TraceBundle

logger = logging.getLogger("repro.core.runner")

T = TypeVar("T")


class AttemptTimeoutError(RuntimeError):
    """An attempt exceeded its per-attempt deadline."""


class RetriesExhaustedError(RuntimeError):
    """Every attempt failed; the last underlying failure is ``__cause__``."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and jitter."""

    max_attempts: int = 3
    base_delay_s: float = 0.5
    backoff: float = 2.0
    max_delay_s: float = 30.0
    #: Fraction of the backoff delay added as uniform random jitter, so a
    #: fleet of restarted jobs does not thundering-herd shared resources.
    jitter: float = 0.5
    #: Wall-clock deadline per attempt (None disables).
    attempt_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff delay before retrying after failed attempt ``attempt``."""
        base = min(self.max_delay_s, self.base_delay_s * self.backoff**attempt)
        return base * (1.0 + self.jitter * float(rng.random()))


@dataclass(frozen=True)
class Incident:
    """One recorded supervision event (for logs, tests and post-mortems)."""

    kind: str
    message: str
    attempt: int


@dataclass
class Supervisor:
    """Run attempts under a :class:`RetryPolicy`, recording incidents.

    ``sleep`` is injectable so tests assert the backoff schedule without
    waiting it out.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    name: str = "job"
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        self.incidents: list[Incident] = []
        self._rng = np.random.default_rng(self.seed)
        self._attempt = 0

    def record(self, kind: str, message: str) -> None:
        incident = Incident(kind=kind, message=message, attempt=self._attempt)
        self.incidents.append(incident)
        logger.warning("%s: [%s] %s (attempt %d)", self.name, kind, message, self._attempt)

    def run(
        self,
        attempt_fn: Callable[[int], T],
        retryable: tuple[type[BaseException], ...] = (Exception,),
    ) -> T:
        """Call ``attempt_fn(attempt_index)`` until it succeeds.

        Exceptions outside ``retryable`` (and ``KeyboardInterrupt`` /
        ``SystemExit``) propagate immediately.  When every attempt fails,
        :class:`RetriesExhaustedError` is raised from the last failure.
        """
        policy = self.policy
        last: BaseException | None = None
        for attempt in range(policy.max_attempts):
            self._attempt = attempt
            try:
                return self._call(attempt_fn, attempt)
            except retryable as exc:
                kind = (
                    "attempt-timeout"
                    if isinstance(exc, AttemptTimeoutError)
                    else "attempt-failed"
                )
                self.record(kind, f"{type(exc).__name__}: {exc}")
                last = exc
                if attempt + 1 < policy.max_attempts:
                    delay = policy.delay_s(attempt, self._rng)
                    logger.info(
                        "%s: retrying in %.2fs (attempt %d/%d)",
                        self.name, delay, attempt + 2, policy.max_attempts,
                    )
                    self.sleep(delay)
        raise RetriesExhaustedError(
            f"{self.name}: all {policy.max_attempts} attempts failed"
        ) from last

    def _call(self, attempt_fn: Callable[[int], T], attempt: int) -> T:
        timeout = self.policy.attempt_timeout_s
        if timeout is None:
            return attempt_fn(attempt)
        box: dict[str, object] = {}

        def target() -> None:
            try:
                box["result"] = attempt_fn(attempt)
            except BaseException as exc:  # repro: allow-broad-except -- the
                # supervisor's relay: the exception is re-raised in the
                # calling thread (see `raise box["error"]` below).
                box["error"] = exc

        # A daemon thread cannot be killed; on timeout it is abandoned (it
        # keeps no locks the supervisor needs) and the attempt is charged
        # as failed.  Checkpoint commits are atomic, so an abandoned
        # attempt can at worst leave an ignorable staging directory.
        worker = threading.Thread(
            target=target, name=f"{self.name}-attempt-{attempt}", daemon=True
        )
        worker.start()
        worker.join(timeout)
        if worker.is_alive():
            raise AttemptTimeoutError(
                f"attempt {attempt} exceeded deadline of {timeout:.1f}s"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]


def supervised_training(
    scenario: "CharlotteScenario",
    bundle: "TraceBundle",
    *,
    checkpoint_dir: str | pathlib.Path,
    config: "MobiRescueConfig | None" = None,
    episodes: int = 6,
    num_teams: int = 40,
    team_capacity: int = 5,
    checkpoint_every: int = 1,
    keep_checkpoints: int = 3,
    policy: RetryPolicy | None = None,
    supervisor: Supervisor | None = None,
) -> "TrainedMobiRescue":
    """Crash-safe training: checkpoint, retry, recover.

    Each attempt first looks for the latest *valid* checkpoint under
    ``checkpoint_dir`` — quarantining damaged ones — and either resumes
    from it or starts fresh.  Combined with atomic checkpoint commits,
    this makes training survive process deaths (rerun the command), plus
    in-process transient failures (retried here with backoff).  Returns
    the :class:`repro.core.training.TrainedMobiRescue`; inspect
    ``supervisor.incidents`` (pass your own :class:`Supervisor`) for the
    recovery trail.
    """
    from repro.core.persistence import find_latest_valid_checkpoint
    from repro.core.training import resume_training, train_mobirescue

    sup = supervisor or Supervisor(policy=policy or RetryPolicy(), name="train")

    def attempt(index: int) -> "TrainedMobiRescue":
        found = find_latest_valid_checkpoint(
            checkpoint_dir, on_incident=lambda kind, msg: sup.record(kind, msg)
        )
        if found is not None:
            checkpoint, path = found
            sup.record(
                "resumed",
                f"recovering from {path.name} (episodes_done="
                f"{checkpoint.episodes_done}/{episodes})",
            )
            return resume_training(
                checkpoint_dir,
                scenario,
                bundle,
                episodes=episodes,
                num_teams=num_teams,
                team_capacity=team_capacity,
                checkpoint_every=checkpoint_every,
                keep_checkpoints=keep_checkpoints,
                checkpoint=checkpoint,
            )
        return train_mobirescue(
            scenario,
            bundle,
            config=config,
            episodes=episodes,
            num_teams=num_teams,
            team_capacity=team_capacity,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
        )

    return sup.run(attempt)

"""Offline training of MobiRescue on a previous disaster.

Section V-B: the SVM and RL models are trained on Hurricane Michael data
and evaluated on Florence.  Training runs the dispatching simulator over
Michael's flooded days with the dispatcher in exploration mode, feeding
every team's per-cycle transition into the shared replay buffer.
"""

from __future__ import annotations

import pathlib
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # circular at runtime: persistence imports this module
    from repro.core.persistence import TrainingCheckpoint
    from repro.mobility.mapmatch import MatchedTrajectories

from repro.core.config import MobiRescueConfig
from repro.core.positions import PopulationFeed
from repro.core.predictor import RequestPredictor, build_training_set
from repro.core.rl_dispatcher import MobiRescueDispatcher, make_agent
from repro.data.charlotte import CharlotteScenario
from repro.mobility.cleaning import clean_trace
from repro.mobility.generator import TraceBundle
from repro.mobility.mapmatch import map_match
from repro.ml.dqn import DQNAgent
from repro.sim.engine import SimulationConfig
from repro.sim.kernel import build_simulator
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY


@dataclass
class TrainedMobiRescue:
    """Artifacts of offline training."""

    agent: DQNAgent
    predictor: RequestPredictor
    config: MobiRescueConfig
    episodes_run: int
    episode_service_rates: list[float]


def pretrain_agent(
    agent: DQNAgent,
    config: MobiRescueConfig,
    samples: int = 4_096,
    steps: int = 1_200,
    batch_size: int = 128,
    pending_hit_rate: float = 0.9,
    predicted_hit_rate: float = 0.1,
) -> None:
    """Warm-start the Q-network on the myopic value of Eq. 5.

    Ground-truth rescues are rare, so a cold DQN sees almost no positive
    reward before exploration decays and collapses to the all-depot policy.
    We therefore regress Q(s, a) onto the one-step expected reward of each
    candidate — ``alpha * expected pickups - beta * travel - gamma`` with
    conservative hit-rate priors for called-in vs merely predicted demand —
    and let the subsequent episodes (and online training) correct the
    priors from experience.  The depot action anchors at zero.
    """
    from repro.core import state as state_mod

    rng = np.random.default_rng(config.seed)
    k = config.num_candidates
    f = state_mod.FEATURES_PER_CANDIDATE
    x = np.zeros((samples, config.state_dim))
    y = np.zeros((samples, config.num_actions))
    for i in range(samples):
        n_cands = int(rng.integers(0, k + 1))
        cap = float(rng.integers(1, 6))
        x[i, f * k] = cap / 5.0
        x[i, f * k + 1] = rng.random()
        x[i, f * k + 2] = rng.random()
        for j in range(k):
            if j >= n_cands:
                # Padded slots: the mask forbids them; target 0 keeps the
                # regression well-conditioned.
                continue
            pending = rng.choice([0.0, 0.0, 1.0, 2.0, 5.0])
            predicted = float(rng.uniform(0, 10))
            tt = float(rng.uniform(30.0, 3_600.0))
            x[i, f * j] = min(pending, state_mod.DEMAND_SCALE) / state_mod.DEMAND_SCALE
            x[i, f * j + 1] = (
                min(predicted, state_mod.DEMAND_SCALE) / state_mod.DEMAND_SCALE
            )
            x[i, f * j + 2] = min(tt, 2 * state_mod.TIME_SCALE) / state_mod.TIME_SCALE
            expected = min(
                pending * pending_hit_rate + predicted * predicted_hit_rate, cap
            )
            y[i, j] = (
                config.alpha * expected
                - config.beta * tt / 3_600.0
                - config.gamma
            )
    for _ in range(steps):
        idx = rng.integers(0, samples, batch_size)
        agent.q_net.train_step(x[idx], y[idx])
    agent.sync_target()


def _deployment_pipeline(
    scenario: CharlotteScenario, bundle: TraceBundle
) -> "MatchedTrajectories":
    """Stage-1 products shared by fresh and resumed training (deterministic
    for a given scenario/bundle)."""
    clean, _ = clean_trace(
        bundle.trace, scenario.partition.width_m, scenario.partition.height_m
    )
    matched = map_match(clean, scenario.network)
    return matched


def _flooded_days(bundle: TraceBundle) -> list[int]:
    # Episodes cycle over the storm's flooded days (where requests live).
    days = sorted({int(r.request_time_s // SECONDS_PER_DAY) for r in bundle.rescues})
    if not days:
        raise ValueError("training storm produced no rescue requests")
    return days


@dataclass
class TrainingSetup:
    """Everything the episode loop needs, fresh or restored.

    Both the plain loop here and the self-healing loop in
    :mod:`repro.training` drive episodes through the same setup and the
    same :func:`run_training_episode`, which is what makes the sentinel's
    fault-free trajectory bit-identical to this module's by construction.
    """

    cfg: MobiRescueConfig
    predictor: RequestPredictor
    feed: PopulationFeed
    agent: DQNAgent
    flooded_days: list[int]


def prepare_training(
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    config: MobiRescueConfig | None = None,
) -> TrainingSetup:
    """Stage-1 pipeline + model construction for a fresh training run."""
    cfg = config or MobiRescueConfig()
    matched = _deployment_pipeline(scenario, bundle)
    training_set = build_training_set(
        scenario,
        bundle,
        matched=matched,
        negatives_per_positive=cfg.negatives_per_positive,
        seed=cfg.seed,
    )
    predictor = RequestPredictor(
        scenario, kernel=cfg.svm_kernel, c=cfg.svm_c, gamma=cfg.svm_gamma, seed=cfg.seed
    ).fit(training_set)
    feed = PopulationFeed(matched)
    agent = make_agent(cfg)
    pretrain_agent(agent, cfg)
    # Pretraining already encodes a sensible policy; exploration refines it
    # rather than drowning it.
    agent.epsilon = 0.3
    return TrainingSetup(cfg, predictor, feed, agent, _flooded_days(bundle))


def setup_from_checkpoint(
    checkpoint: "TrainingCheckpoint",
    scenario: CharlotteScenario,
    bundle: TraceBundle,
) -> TrainingSetup:
    """Rebuild a :class:`TrainingSetup` from a committed checkpoint."""
    # Lazy import; see _run_episodes.
    from repro.core import persistence

    cfg = checkpoint.config
    matched = _deployment_pipeline(scenario, bundle)
    predictor = persistence.restore_predictor(checkpoint, scenario)
    feed = PopulationFeed(matched)
    agent = make_agent(cfg)
    agent.set_state(checkpoint.agent_state)
    return TrainingSetup(cfg, predictor, feed, agent, _flooded_days(bundle))


def run_training_episode(
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    setup: TrainingSetup,
    ep: int,
    *,
    num_teams: int,
    team_capacity: int,
) -> float | None:
    """One exploration episode; returns its service rate, or ``None`` when
    the episode's flooded day produced no operable requests (in which case
    no training randomness is consumed at all)."""
    cfg = setup.cfg
    day = setup.flooded_days[ep % len(setup.flooded_days)]
    t0, t1 = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(bundle.rescues, t0, t1),
        scenario.network,
        scenario.flood,
    )
    if not requests:
        return None
    dispatcher = MobiRescueDispatcher(
        scenario, setup.predictor, setup.feed, setup.agent, cfg, training=True
    )
    sim = build_simulator(
        scenario,
        requests,
        dispatcher,
        SimulationConfig(
            t0_s=t0,
            t1_s=t1,
            num_teams=num_teams,
            team_capacity=team_capacity,
            seed=cfg.seed + ep,
        ),
    )
    result = sim.run()
    final_pickups: dict[int, int] = defaultdict(int)
    for p in result.pickups:
        final_pickups[p.team_id] += 1
    dispatcher.finish_episode(dict(final_pickups))
    n = len(requests)
    return len(result.pickups) / n if n else 0.0


def _run_episodes(
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    setup: TrainingSetup,
    *,
    start_episode: int,
    episodes: int,
    num_teams: int,
    team_capacity: int,
    service_rates: list[float],
    checkpoint_dir: str | pathlib.Path | None = None,
    checkpoint_every: int = 1,
    keep_checkpoints: int = 3,
) -> TrainedMobiRescue:
    """The episode loop, resumable at any episode boundary.

    Every source of randomness lives either in the per-episode simulator
    (seeded ``cfg.seed + ep``, rebuilt each episode) or in the agent
    (whose RNG, replay buffer and optimizer state are checkpointed), so a
    run interrupted at episode *k* and resumed is bit-identical to one
    that never stopped.
    """
    cfg, predictor, agent = setup.cfg, setup.predictor, setup.agent
    for ep in range(start_episode, episodes):
        rate = run_training_episode(
            scenario, bundle, setup, ep,
            num_teams=num_teams, team_capacity=team_capacity,
        )
        if rate is not None:
            service_rates.append(rate)
        if checkpoint_dir is not None and (
            (ep + 1) % checkpoint_every == 0 or ep + 1 == episodes
        ):
            # Imported lazily: persistence depends on this module for
            # TrainedMobiRescue, so a top-level import would be circular.
            from repro.core import persistence

            persistence.save_checkpoint(
                checkpoint_dir,
                persistence.checkpoint_from_training(
                    agent, predictor, cfg, ep + 1, service_rates
                ),
            )
            persistence.prune_checkpoints(checkpoint_dir, keep=keep_checkpoints)

    return TrainedMobiRescue(
        agent=agent,
        predictor=predictor,
        config=cfg,
        episodes_run=len(service_rates),
        episode_service_rates=service_rates,
    )


def train_mobirescue(
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    config: MobiRescueConfig | None = None,
    episodes: int = 6,
    num_teams: int = 40,
    team_capacity: int = 5,
    checkpoint_dir: str | pathlib.Path | None = None,
    checkpoint_every: int = 1,
    keep_checkpoints: int = 3,
) -> TrainedMobiRescue:
    """Train the SVM predictor and DQN policy on a training storm.

    With ``checkpoint_dir`` set, resumable training state is committed
    after every ``checkpoint_every`` episodes (and always after the final
    one) through :mod:`repro.core.persistence`; an interrupted run can be
    continued with :func:`resume_training` and produces bit-identical
    models.  Checkpointing never consumes training randomness, so runs
    with and without it are identical too.
    """
    if episodes < 1:
        raise ValueError("episodes must be positive")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be positive")
    setup = prepare_training(scenario, bundle, config)

    return _run_episodes(
        scenario,
        bundle,
        setup,
        start_episode=0,
        episodes=episodes,
        num_teams=num_teams,
        team_capacity=team_capacity,
        service_rates=[],
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        keep_checkpoints=keep_checkpoints,
    )


def resume_training(
    checkpoint_dir: str | pathlib.Path,
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    episodes: int = 6,
    num_teams: int = 40,
    team_capacity: int = 5,
    checkpoint_every: int = 1,
    keep_checkpoints: int = 3,
    checkpoint: "TrainingCheckpoint | None" = None,
) -> TrainedMobiRescue:
    """Continue an interrupted training run from its latest valid checkpoint.

    ``episodes`` is the *total* target: resuming a run checkpointed at
    episode *k* executes episodes ``k..episodes`` and returns models
    bit-identical to an uninterrupted ``train_mobirescue`` call (the
    checkpoint restores the agent's weights, Adam accumulators, target
    net, replay buffer, RNG state, epsilon and counters; the predictor
    and position feed are restored from the checkpoint and the
    deterministic stage-1 pipeline).  Damaged checkpoints are quarantined
    and skipped; with no valid checkpoint at all this raises
    :class:`repro.core.artifacts.ArtifactError`.

    ``checkpoint`` short-circuits discovery when the caller (the
    supervisor) has already loaded one.
    """
    # Lazy import; see _run_episodes.
    from repro.core import persistence
    from repro.core.artifacts import ArtifactError

    if checkpoint is None:
        found = persistence.find_latest_valid_checkpoint(checkpoint_dir)
        if found is None:
            raise ArtifactError(f"no valid checkpoint under {checkpoint_dir}")
        checkpoint, _ = found

    setup = setup_from_checkpoint(checkpoint, scenario, bundle)

    return _run_episodes(
        scenario,
        bundle,
        setup,
        start_episode=checkpoint.episodes_done,
        episodes=episodes,
        num_teams=num_teams,
        team_capacity=team_capacity,
        service_rates=list(checkpoint.service_rates),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        keep_checkpoints=keep_checkpoints,
    )

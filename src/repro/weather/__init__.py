"""Weather substrate: storm timelines and per-region weather fields.

Stands in for the paper's National Weather Service feeds (precipitation and
wind per region, Fig. 1) and for the temporal structure of Hurricanes
Florence (evaluation storm) and Michael (training storm).
"""

from repro.weather.storms import FLORENCE, MICHAEL, StormTimeline
from repro.weather.fields import RegionWeatherField
from repro.weather.service import WeatherService

__all__ = [
    "FLORENCE",
    "MICHAEL",
    "RegionWeatherField",
    "StormTimeline",
    "WeatherService",
]

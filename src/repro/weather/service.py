"""WeatherService — facade playing the National Weather Service role.

The paper's dispatch center queries NWS for (a) region weather (feeding the
SVM factor vectors) and (b) satellite flood imaging (feeding the operable
network G̃ and ground-truth labeling).  This facade bundles the region
weather field, the terrain and the flood model behind the same two queries.
"""

from __future__ import annotations

import numpy as np

from repro.geo.flood import FloodModel
from repro.geo.terrain import TerrainField
from repro.weather.fields import RegionWeatherField


class WeatherService:
    """One-stop weather/flood query surface for the dispatch pipeline."""

    def __init__(
        self,
        field: RegionWeatherField,
        terrain: TerrainField,
        flood: FloodModel,
    ) -> None:
        if flood.partition is not field.partition:
            raise ValueError("flood model and weather field must share a partition")
        self.field = field
        self.terrain = terrain
        self.flood = flood
        self.partition = field.partition
        self.timeline = field.timeline

    def factor_vector(self, x: float, y: float, t_seconds: float) -> np.ndarray:
        """Disaster-related factor vector h = (precipitation, wind, altitude)
        at a plane position (paper Section IV-B)."""
        rid = self.partition.region_of(x, y)
        return np.array(
            [
                self.field.factor_precipitation_mm_per_h(rid, t_seconds),
                self.field.factor_wind_mph(rid, t_seconds),
                self.terrain.altitude(x, y),
            ]
        )

    def factor_vectors(self, xy: np.ndarray, t_seconds: float) -> np.ndarray:
        """Vectorized :meth:`factor_vector` for an (N, 2) array of points."""
        xy = np.asarray(xy, dtype=float)
        regions = self.partition.region_of_many(xy)
        precip = np.array(
            [self.field.factor_precipitation_mm_per_h(int(r), t_seconds) for r in regions]
        )
        wind = np.array([self.field.factor_wind_mph(int(r), t_seconds) for r in regions])
        alt = self.terrain.altitude_many(xy)
        return np.column_stack([precip, wind, alt])

    def is_flooded(self, x: float, y: float, t_seconds: float) -> bool:
        """Satellite-imaging flood query for a single position."""
        return self.flood.is_flooded(x, y, t_seconds)

    def severity(self, region_id: int, t_seconds: float) -> float:
        return self.field.severity(region_id, t_seconds)

"""Storm timelines: when the hurricane hits and how the flood evolves.

Two closed-form curves drive everything downstream:

* ``intensity(t)`` — instantaneous storm strength in [0, 1] (rain rate and
  wind scale with it);
* ``flood_level(t)`` — the lagged hydrological response in [0, 1]: it rises
  while the storm rains and *recedes slowly* afterwards.  The slow recession
  is what reproduces the paper's Fig. 5: vehicle flow after the disaster is
  restored but remains well below the pre-disaster level for days.

Timelines measure time in seconds from the scenario start day (day 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0


@dataclass(frozen=True)
class StormTimeline:
    """A named storm within a multi-day scenario window."""

    name: str
    #: Calendar label of day 0, e.g. "Aug 25" — used only for rendering.
    day0_label: str
    #: Total scenario length in days.
    total_days: int
    #: Storm active interval, in fractional days from day 0.
    storm_start_day: float
    storm_end_day: float
    #: Flood rise time constant while the storm is active, days.
    rise_tau_days: float = 4.0
    #: Flood recession time constant after the crest, days.
    recede_tau_days: float = 5.0
    #: Rivers crest after the rain stops: the flood keeps rising for
    #: ``crest_lag_days`` past the storm end, by factor ``crest_gain``
    #: (capped at level 1).  This is why the paper's rescue requests peak on
    #: Sep 16, the day *after* Florence moved out.
    crest_lag_days: float = 1.6
    crest_gain: float = 1.9

    def __post_init__(self) -> None:
        if self.total_days <= 0:
            raise ValueError("total_days must be positive")
        if not (0.0 <= self.storm_start_day < self.storm_end_day <= self.total_days):
            raise ValueError("storm interval must lie inside the scenario window")
        if self.rise_tau_days <= 0 or self.recede_tau_days <= 0:
            raise ValueError("time constants must be positive")
        if self.crest_lag_days < 0 or self.crest_gain < 1.0:
            raise ValueError("crest lag must be >= 0 and crest gain >= 1")

    @property
    def duration_s(self) -> float:
        return self.total_days * SECONDS_PER_DAY

    @property
    def storm_start_s(self) -> float:
        return self.storm_start_day * SECONDS_PER_DAY

    @property
    def storm_end_s(self) -> float:
        return self.storm_end_day * SECONDS_PER_DAY

    def day_of(self, t_seconds: float) -> int:
        """Scenario day index (0-based) containing time ``t``."""
        return int(t_seconds // SECONDS_PER_DAY)

    def intensity(self, t_seconds: float) -> float:
        """Instantaneous storm strength in [0, 1].

        Half-sine pulse over the storm interval: ramps up, peaks mid-storm,
        ramps down — a standard hyetograph shape.
        """
        if t_seconds < self.storm_start_s or t_seconds > self.storm_end_s:
            return 0.0
        frac = (t_seconds - self.storm_start_s) / (self.storm_end_s - self.storm_start_s)
        return math.sin(math.pi * frac)

    def intensity_integral_h(self, t0_seconds: float, t1_seconds: float) -> float:
        """Closed-form integral of :meth:`intensity` over [t0, t1], in
        peak-intensity-hours.  Multiplying by a region's peak rain rate gives
        accumulated precipitation in mm."""
        lo = max(t0_seconds, self.storm_start_s)
        hi = min(t1_seconds, self.storm_end_s)
        if hi <= lo:
            return 0.0
        duration = self.storm_end_s - self.storm_start_s
        k = math.pi / duration

        def antiderivative(t: float) -> float:
            return -math.cos(k * (t - self.storm_start_s)) / k

        return (antiderivative(hi) - antiderivative(lo)) / SECONDS_PER_HOUR

    def flood_level(self, t_seconds: float) -> float:
        """Lagged flood response in [0, 1].

        Saturating rise while the storm rains, continued rise to the river
        crest ``crest_lag_days`` after the rain stops, then exponential
        recession.
        """
        if t_seconds <= self.storm_start_s:
            return 0.0
        rise_tau = self.rise_tau_days * SECONDS_PER_DAY
        if t_seconds <= self.storm_end_s:
            return 1.0 - math.exp(-(t_seconds - self.storm_start_s) / rise_tau)
        at_end = 1.0 - math.exp(-(self.storm_end_s - self.storm_start_s) / rise_tau)
        crest_val = min(1.0, at_end * self.crest_gain)
        crest_s = self.storm_end_s + self.crest_lag_days * SECONDS_PER_DAY
        if t_seconds <= crest_s:
            if self.crest_lag_days == 0:
                return crest_val
            frac = (t_seconds - self.storm_end_s) / (crest_s - self.storm_end_s)
            ramp = 0.5 * (1.0 - math.cos(math.pi * frac))
            return at_end + (crest_val - at_end) * ramp
        recede_tau = self.recede_tau_days * SECONDS_PER_DAY
        return crest_val * math.exp(-(t_seconds - crest_s) / recede_tau)

    def phase(self, t_seconds: float) -> str:
        """Coarse phase label: 'before' / 'during' / 'after'."""
        if t_seconds < self.storm_start_s:
            return "before"
        if t_seconds <= self.storm_end_s:
            return "during"
        return "after"


#: Hurricane Florence scenario: day 0 = Aug 25, 2018; window runs through
#: Sep 20 (27 days), covering the paper's before-day (Aug 25), the storm
#: (Sep 12-15 = days 18-21), the evaluation day (Sep 16 = day 22) and the
#: after-day (Sep 20 = day 26).
FLORENCE = StormTimeline(
    name="Florence",
    day0_label="Aug 25",
    total_days=27,
    storm_start_day=18.5,
    storm_end_day=21.5,
)

#: Hurricane Michael training scenario: day 0 = Oct 5, 2018; the storm's
#: Charlotte impact spans Oct 10-12 (days 5-7); 14-day window.
MICHAEL = StormTimeline(
    name="Michael",
    day0_label="Oct 5",
    total_days=14,
    storm_start_day=5.3,
    storm_end_day=7.4,
)

_MONTH_LENGTHS = {"Aug": 31, "Sep": 30, "Oct": 31}
_MONTH_ORDER = ["Aug", "Sep", "Oct"]


def day_label(timeline: StormTimeline, day: int) -> str:
    """Calendar label ('Sep 16') for a 0-based scenario day index."""
    month, dom = timeline.day0_label.split()
    dom_i = int(dom) + day
    mi = _MONTH_ORDER.index(month)
    while dom_i > _MONTH_LENGTHS[_MONTH_ORDER[mi]]:
        dom_i -= _MONTH_LENGTHS[_MONTH_ORDER[mi]]
        mi += 1
        if mi >= len(_MONTH_ORDER):
            raise ValueError("day index runs past the supported calendar window")
    return f"{_MONTH_ORDER[mi]} {dom_i}"


def day_index(timeline: StormTimeline, label: str) -> int:
    """Inverse of :func:`day_label` ('Sep 16' -> scenario day index)."""
    for d in range(timeline.total_days):
        if day_label(timeline, d) == label:
            return d
    raise ValueError(f"{label!r} is outside the {timeline.name} scenario window")

"""Per-region time-varying weather fields.

Couples the static region profiles (Fig. 1: peak precipitation / wind /
altitude per region) with a storm timeline to produce the quantities the
rest of the system consumes: instantaneous precipitation rate, wind speed,
and the region disaster severity that drives flooding and trip suppression.
"""

from __future__ import annotations

from repro.geo.regions import RegionPartition
from repro.weather.storms import SECONDS_PER_HOUR, StormTimeline


class RegionWeatherField:
    """Region-resolved weather as a function of scenario time."""

    def __init__(self, partition: RegionPartition, timeline: StormTimeline) -> None:
        self.partition = partition
        self.timeline = timeline

    def precipitation_mm_per_h(self, region_id: int, t_seconds: float) -> float:
        """Instantaneous rain rate; the profile value is the storm-peak rate."""
        peak = self.partition.profile(region_id).precipitation_mm
        return peak * self.timeline.intensity(t_seconds)

    def wind_mph(self, region_id: int, t_seconds: float) -> float:
        """Instantaneous wind speed, with a calm-weather floor of 5 mph."""
        peak = self.partition.profile(region_id).wind_mph
        return max(5.0, peak * self.timeline.intensity(t_seconds))

    def accumulated_precipitation_mm(self, region_id: int, t_seconds: float) -> float:
        """Rain accumulated since scenario start (closed form)."""
        peak = self.partition.profile(region_id).precipitation_mm
        return peak * self.timeline.intensity_integral_h(0.0, t_seconds)

    def trailing_precipitation_mm(
        self, region_id: int, t_seconds: float, window_h: float = 48.0
    ) -> float:
        """Rain accumulated over the trailing ``window_h`` hours."""
        peak = self.partition.profile(region_id).precipitation_mm
        t0 = t_seconds - window_h * SECONDS_PER_HOUR
        return peak * self.timeline.intensity_integral_h(t0, t_seconds)

    def factor_precipitation_mm_per_h(self, region_id: int, t_seconds: float) -> float:
        """The precipitation component of the disaster-related factor vector.

        The paper feeds the SVM "the precipitation" at a person's position;
        what NWS flood products actually report is basin accumulation with
        its hydrological response — water on the ground, not rain in the
        air.  The factor is therefore the region's storm rainfall scaled by
        the flood response, which stays informative (and temporally aligned
        with the danger) after the rain stops — precisely when most rescue
        requests appear (Sep 16).
        """
        peak = self.partition.profile(region_id).precipitation_mm
        return peak * self.timeline.flood_level(t_seconds)

    def factor_wind_mph(self, region_id: int, t_seconds: float) -> float:
        """The wind component of the factor vector: instantaneous storm wind
        with a wake term (gusts persist over saturated, flooded ground),
        floored at calm-weather 5 mph."""
        peak = self.partition.profile(region_id).wind_mph
        strength = max(
            self.timeline.intensity(t_seconds), 0.5 * self.timeline.flood_level(t_seconds)
        )
        return max(5.0, peak * strength)

    def severity(self, region_id: int, t_seconds: float) -> float:
        """Disaster severity of a region at time ``t``, in [0, 1].

        The product of the region's structural susceptibility (its profile
        severity, which encodes how P/W/A compare across regions) and the
        storm's lagged flood level.  This is the ``severity_fn`` consumed by
        :class:`repro.geo.flood.FloodModel` and by the mobility trip model.
        """
        profile = self.partition.profile(region_id)
        return profile.severity * self.timeline.flood_level(t_seconds)

    def severity_fn(self):
        """``(region_id, t_seconds) -> severity`` closure for the flood model."""
        return self.severity

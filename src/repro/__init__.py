"""MobiRescue (ICDCS 2020) — a from-scratch reproduction.

Rescue-team dispatching in a flooding disaster: SVM prediction of potential
rescue requests from disaster-related factors, plus reinforcement-learning
dispatching over a simulated city.  Start with
:class:`repro.core.MobiRescueSystem` and the dataset builders in
:mod:`repro.data`; see README.md for a tour.

Subpackages
-----------
``geo``        coordinates, regions, terrain, flood model
``roadnet``    road-network graph, generator, routing
``weather``    storm timelines and weather fields
``mobility``   synthetic GPS traces and the stage-1 pipeline
``hospitals``  hospital placement and delivery detection
``ml``         SVM (SMO), MLP, replay buffer, DQN
``sim``        the rescue-dispatching simulator
``dispatch``   dispatcher interface and comparison baselines
``core``       the MobiRescue system itself
``data``       scenario/dataset assembly
``eval``       experiment harness, one entry per paper table/figure
"""

import logging as _logging

# Library default: the ``repro.*`` loggers stay silent unless the
# application attaches handlers (see :mod:`repro.core.log`).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

"""Hospital-delivery detection and rescued-person labeling.

Implements the paper's Section III-B2 method exactly:

* a person counts as *delivered* to a hospital when, starting from their
  first appearance at the hospital, they stay there longer than a time
  threshold (2 hours in the paper);
* a delivered person counts as *rescued* when their previous staying
  position (the last fix before the hospital dwell) lies inside a flood
  zone per the satellite imaging (our flood model).

These labels are the ground truth used to train and score the SVM
rescue-request predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.flood import FloodModel
from repro.hospitals.hospitals import Hospital
from repro.mobility.trace import GpsTrace
from repro.roadnet.graph import RoadNetwork

DWELL_THRESHOLD_S = 2.0 * 3_600.0


@dataclass(frozen=True)
class DeliveryEvent:
    """One detected hospital delivery."""

    person_id: int
    hospital_id: int
    arrival_time_s: float
    departure_time_s: float
    #: Last fix before the hospital dwell; ``None`` when the dwell opens the
    #: person's trace.
    prev_xy: tuple[float, float] | None
    prev_time_s: float | None

    @property
    def dwell_s(self) -> float:
        return self.departure_time_s - self.arrival_time_s


def detect_deliveries(
    trace: GpsTrace,
    network: RoadNetwork,
    hospitals: list[Hospital],
    dwell_threshold_s: float = DWELL_THRESHOLD_S,
    radius_m: float = 400.0,
) -> list[DeliveryEvent]:
    """Detect hospital deliveries in a cleaned, sorted trace.

    A delivery is a maximal run of fixes within ``radius_m`` of some
    hospital whose duration is at least ``dwell_threshold_s``.
    """
    if not hospitals:
        raise ValueError("hospital list is empty")
    if len(trace) == 0:
        return []

    hosp_xy = np.array([network.landmark(h.node_id).xy for h in hospitals])
    pts = np.column_stack([trace.x.astype(np.float64), trace.y.astype(np.float64)])
    d2 = ((pts[:, None, :] - hosp_xy[None, :, :]) ** 2).sum(axis=2)
    nearest = np.argmin(d2, axis=1)
    at_hospital = np.sqrt(d2[np.arange(len(pts)), nearest]) <= radius_m

    events: list[DeliveryEvent] = []
    pid = trace.person_id
    boundaries = np.nonzero(np.diff(pid))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(pid)]])
    for s, e in zip(starts, ends):
        mask = at_hospital[s:e]
        ts = trace.t[s:e]
        i = 0
        n = e - s
        while i < n:
            if not mask[i]:
                i += 1
                continue
            j = i
            hid = int(hospitals[int(nearest[s + i])].hospital_id)
            while (
                j + 1 < n
                and mask[j + 1]
                and int(hospitals[int(nearest[s + j + 1])].hospital_id) == hid
            ):
                j += 1
            if ts[j] - ts[i] >= dwell_threshold_s:
                # Previous *staying* position: the paper labels rescues from
                # where the person was staying before delivery, so skip
                # in-motion fixes (the ambulance ride itself).
                prev_xy = prev_t = None
                k = i - 1
                while k >= 0 and trace.speed[s + k] >= 2.0:
                    k -= 1
                if k >= 0:
                    prev_xy = (float(trace.x[s + k]), float(trace.y[s + k]))
                    prev_t = float(ts[k])
                events.append(
                    DeliveryEvent(
                        person_id=int(pid[s]),
                        hospital_id=hid,
                        arrival_time_s=float(ts[i]),
                        departure_time_s=float(ts[j]),
                        prev_xy=prev_xy,
                        prev_time_s=prev_t,
                    )
                )
            i = j + 1
    return events


def label_rescued(
    events: list[DeliveryEvent], flood: FloodModel
) -> list[tuple[DeliveryEvent, bool]]:
    """Label each delivery as a flood rescue or an ordinary visit.

    A delivery is a rescue when the person's previous staying position was
    inside a flood zone at that time (paper Section III-B2).
    """
    labeled: list[tuple[DeliveryEvent, bool]] = []
    for ev in events:
        rescued = False
        if ev.prev_xy is not None and ev.prev_time_s is not None:
            rescued = flood.is_flooded(ev.prev_xy[0], ev.prev_xy[1], ev.prev_time_s)
        labeled.append((ev, rescued))
    return labeled

"""Hospitals: placement, delivery detection, rescue ground truth.

The paper assumes the deployment of existing Charlotte hospitals, detects
hospital deliveries from the mobility trace (first appearance + >= 2 h
dwell, Section III-B2) and labels a delivered person as *rescued* when
their previous staying position was inside a flood zone.
"""

from repro.hospitals.hospitals import Hospital, place_hospitals

# Package-level mutuality with repro.mobility (delivery reads the trace
# types, the generator reads Hospital); module-level acyclic — both sides
# import leaf submodules only, never package attributes mid-init.
# repro: allow-layering -- package-init cycle is benign at module level
from repro.hospitals.delivery import DeliveryEvent, detect_deliveries, label_rescued

__all__ = [
    "DeliveryEvent",
    "Hospital",
    "detect_deliveries",
    "label_rescued",
    "place_hospitals",
]

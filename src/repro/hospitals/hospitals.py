"""Hospital placement on the road network.

The paper fixes hospital locations to the existing Charlotte hospitals and
has every method deliver rescued people to the nearest one; rescue teams
(ambulances) are initially distributed among hospitals and return to their
nearest hospital between rescues (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.regions import RegionPartition
from repro.perf.routing_cache import default_router
from repro.roadnet.graph import RoadNetwork


@dataclass(frozen=True)
class Hospital:
    """A hospital anchored at a road-network landmark."""

    hospital_id: int
    node_id: int
    region_id: int


def place_hospitals(
    network: RoadNetwork,
    partition: RegionPartition,
    extra_downtown: int = 2,
    seed: int = 23,
) -> list[Hospital]:
    """Deterministically place hospitals: one near each region seed plus
    ``extra_downtown`` more in Region 3 (the downtown has several large
    hospitals in Charlotte)."""
    rng = np.random.default_rng(seed)
    hospitals: list[Hospital] = []
    used: set[int] = set()
    hid = 0
    for rid in partition.region_ids:
        sx, sy = partition.seed_xy(rid)
        node = network.nearest_landmark(sx, sy)
        if node in used:  # two seeds snapping to one landmark: nudge away
            node = network.nearest_landmark(sx + 500.0, sy + 500.0)
        used.add(node)
        hospitals.append(Hospital(hid, node, rid))
        hid += 1

    downtown_nodes = [
        n
        for n in network.landmark_ids()
        if partition.region_of(*network.landmark(n).xy) == 3 and n not in used
    ]
    for _ in range(extra_downtown):
        if not downtown_nodes:
            break
        node = int(rng.choice(downtown_nodes))
        downtown_nodes.remove(node)
        used.add(node)
        hospitals.append(Hospital(hid, node, 3))
        hid += 1
    return hospitals


def nearest_hospital(
    network: RoadNetwork,
    node: int,
    hospitals: list[Hospital],
    closed: frozenset[int] = frozenset(),
) -> tuple[Hospital | None, float]:
    """Hospital with the smallest driving time from ``node`` through the
    operable network, and that driving time in seconds.

    Returns ``(None, inf)`` when no hospital is reachable.
    """
    if not hospitals:
        raise ValueError("hospital list is empty")
    times = default_router(network).time_from(node, closed=closed)
    best: Hospital | None = None
    best_t = float("inf")
    for h in hospitals:
        t = times.get(h.node_id, float("inf"))
        if t < best_t:
            best, best_t = h, t
    return best, best_t

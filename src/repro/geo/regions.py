"""The 7-region partition of the city (paper Fig. 1).

The paper partitions Charlotte into the 7 City Council districts and
annotates each with its average precipitation P (mm), wind speed W (mph) and
altitude A (m) during the hurricane.  Only R1 and R2 are given numerically in
the paper (R1: P=127, W=61, A=232.86; R2: P=152, W=72, A=195.07); the
remaining profiles are interpolated to be consistent with the paper's
narrative: Region 3 is the central downtown, is hit hardest, and receives
most rescue requests (Fig. 4), and impact severity orders regions the same
way P and W do (Table I correlation signs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RegionProfile:
    """Static description of one council-district region.

    ``seed`` is the region's representative point, expressed as fractions
    (fx, fy) of the city plane's width/height; the partition is the Voronoi
    diagram of the seeds.
    """

    region_id: int
    name: str
    precipitation_mm: float
    wind_mph: float
    altitude_m: float
    seed: tuple[float, float]

    def __post_init__(self) -> None:
        if self.region_id < 1:
            raise ValueError("region_id is 1-based")
        if not (0.0 <= self.seed[0] <= 1.0 and 0.0 <= self.seed[1] <= 1.0):
            raise ValueError("seed must be expressed as plane fractions in [0, 1]")

    @property
    def severity(self) -> float:
        """Scalar disaster-impact severity in [0, 1].

        Combines the disaster-related factors with the weighting implied by
        Table I (|corr|: precipitation > wind speed > altitude): severity
        rises with precipitation and wind and falls with altitude.
        """
        p = np.clip((self.precipitation_mm - 110.0) / 60.0, 0.0, 1.0)
        w = np.clip((self.wind_mph - 50.0) / 35.0, 0.0, 1.0)
        a = np.clip((250.0 - self.altitude_m) / 80.0, 0.0, 1.0)
        return float(0.5 * p + 0.3 * w + 0.2 * a)


#: Per-region profiles for the Hurricane Florence scenario (paper Fig. 1).
#: R1/R2 values are the paper's; R3 is downtown (center seed, hit hardest).
#: The interpolated regions deliberately decorrelate the three factors
#: (e.g. R5 is rainy but high ground, R6 is drier lowland): with perfectly
#: collinear factors, every factor would correlate with flow identically,
#: whereas the paper's Table I finds |precipitation| > |wind| > |altitude|.
CHARLOTTE_REGION_PROFILES: tuple[RegionProfile, ...] = (
    RegionProfile(1, "R1 (north ridge)", 127.0, 61.0, 232.86, (0.28, 0.82)),
    RegionProfile(2, "R2 (east lowland)", 152.0, 72.0, 195.07, (0.80, 0.60)),
    RegionProfile(3, "R3 (downtown)", 165.0, 78.0, 181.40, (0.50, 0.50)),
    RegionProfile(4, "R4 (west)", 140.0, 70.0, 211.30, (0.18, 0.45)),
    RegionProfile(5, "R5 (south creek)", 148.0, 64.0, 221.00, (0.55, 0.18)),
    RegionProfile(6, "R6 (north-east)", 133.0, 63.0, 198.50, (0.72, 0.88)),
    RegionProfile(7, "R7 (south-west)", 144.0, 68.0, 205.80, (0.25, 0.14)),
)


class RegionPartition:
    """Voronoi partition of the local plane into regions.

    Region membership of any point is decided by the nearest region seed;
    this mirrors how the paper assigns road segments and GPS fixes to
    Council districts.
    """

    def __init__(
        self,
        profiles: tuple[RegionProfile, ...] | list[RegionProfile],
        width_m: float,
        height_m: float,
    ) -> None:
        if not profiles:
            raise ValueError("at least one region profile is required")
        ids = [p.region_id for p in profiles]
        if len(set(ids)) != len(ids):
            raise ValueError("region ids must be unique")
        if width_m <= 0 or height_m <= 0:
            raise ValueError("plane dimensions must be positive")
        self.profiles: tuple[RegionProfile, ...] = tuple(
            sorted(profiles, key=lambda p: p.region_id)
        )
        self.width_m = float(width_m)
        self.height_m = float(height_m)
        self._seeds_xy = np.array(
            [(p.seed[0] * width_m, p.seed[1] * height_m) for p in self.profiles]
        )
        self._ids = np.array([p.region_id for p in self.profiles])
        self._by_id = {p.region_id: p for p in self.profiles}

    @property
    def region_ids(self) -> list[int]:
        return [int(i) for i in self._ids]

    def profile(self, region_id: int) -> RegionProfile:
        try:
            return self._by_id[region_id]
        except KeyError:
            raise KeyError(f"unknown region id {region_id}") from None

    def seed_xy(self, region_id: int) -> tuple[float, float]:
        p = self.profile(region_id)
        return (p.seed[0] * self.width_m, p.seed[1] * self.height_m)

    def region_of(self, x: float, y: float) -> int:
        """Region id of a single plane point (nearest seed)."""
        d2 = (self._seeds_xy[:, 0] - x) ** 2 + (self._seeds_xy[:, 1] - y) ** 2
        return int(self._ids[int(np.argmin(d2))])

    def region_of_many(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized region lookup for an (N, 2) array of plane points."""
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError("xy must have shape (N, 2)")
        d2 = ((xy[:, None, :] - self._seeds_xy[None, :, :]) ** 2).sum(axis=2)
        return self._ids[np.argmin(d2, axis=1)]


def charlotte_regions(width_m: float, height_m: float) -> RegionPartition:
    """The 7-region Charlotte partition on a plane of the given extent."""
    return RegionPartition(CHARLOTTE_REGION_PROFILES, width_m, height_m)

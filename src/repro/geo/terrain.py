"""Smooth synthetic terrain (altitude field) over the city plane.

Altitude is one of the three disaster-related factors (paper Section IV-B).
The paper reads a person's altitude from their cellphone altimeter; we
synthesize a deterministic smooth field whose per-region averages match the
region profiles (Fig. 1: R1 = 232.86 m, R2 = 195.07 m, ...).

The field is an inverse-distance-weighted blend of the region base
altitudes plus a small smooth sinusoidal relief, so that (a) region averages
land close to the profile values and (b) each region has internal altitude
variation — which is what makes partial flooding of a region possible.
"""

from __future__ import annotations

import numpy as np

from repro.geo.regions import RegionPartition


class TerrainField:
    """Deterministic altitude field ``altitude(x, y) -> meters``."""

    #: Peak-to-peak amplitude of the intra-region relief, meters.
    RELIEF_AMPLITUDE_M = 18.0

    def __init__(self, partition: RegionPartition, relief_wavelength_m: float = 4_000.0) -> None:
        if relief_wavelength_m <= 0:
            raise ValueError("relief wavelength must be positive")
        self.partition = partition
        self._wavelength = float(relief_wavelength_m)
        self._seeds = np.array(
            [partition.seed_xy(r) for r in partition.region_ids]
        )
        self._base_alts = np.array(
            [partition.profile(r).altitude_m for r in partition.region_ids]
        )
        # IDW softening length: well under the inter-seed spacing so each
        # region is dominated by its own base altitude while boundaries blend.
        self._idw_eps = 0.07 * max(partition.width_m, partition.height_m)

    def altitude(self, x: float, y: float) -> float:
        """Altitude at a single plane point, meters."""
        return float(self.altitude_many(np.array([[x, y]]))[0])

    def altitude_many(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized altitude for an (N, 2) array of plane points."""
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError("xy must have shape (N, 2)")
        d2 = ((xy[:, None, :] - self._seeds[None, :, :]) ** 2).sum(axis=2)
        w = 1.0 / (d2 + self._idw_eps**2)
        base = (w * self._base_alts[None, :]).sum(axis=1) / w.sum(axis=1)
        k = 2.0 * np.pi / self._wavelength
        relief = (self.RELIEF_AMPLITUDE_M / 2.0) * (
            np.sin(k * xy[:, 0]) * np.cos(0.7 * k * xy[:, 1])
            + 0.5 * np.sin(1.7 * k * xy[:, 1] + 1.3)
        )
        return base + relief

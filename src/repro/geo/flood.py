"""Flood-zone model — the stand-in for NWS satellite flood imaging.

The paper obtains flooded zones from National Weather Service satellite
imaging and uses them for three things: (a) deciding whether a person's
movement is flooding-affected (ground-truth rescue labels, Section III-B2),
(b) computing the remaining operable road network G̃, and (c) motivating the
severity analysis.  We reproduce the same interface from a physical proxy:
at disaster severity ``s`` in region ``R``, the lowest ``max_flood_fraction
* s`` share of R's terrain is underwater.

Severity is supplied per region as a function of time, so the same model
serves both the Florence evaluation storm and the Michael training storm.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.geo.terrain import TerrainField

#: ``severity_fn(region_id, t_seconds) -> float in [0, 1]``
SeverityFn = Callable[[int, float], float]


class FloodModel:
    """Terrain + severity -> time-varying flood zones.

    Per-region altitude quantiles are precomputed from a sampled grid, so
    flood queries are O(1) per point: a point is flooded at time ``t`` when
    its altitude is below the region's flood waterline, which is the
    ``max_flood_fraction * severity(region, t)`` quantile of the region's
    altitude distribution.
    """

    def __init__(
        self,
        terrain: TerrainField,
        severity_fn: SeverityFn,
        max_flood_fraction: float = 0.30,
        grid_resolution: int = 80,
    ) -> None:
        if not (0.0 < max_flood_fraction <= 1.0):
            raise ValueError("max_flood_fraction must be in (0, 1]")
        if grid_resolution < 8:
            raise ValueError("grid_resolution too coarse to estimate quantiles")
        self.terrain = terrain
        self.partition = terrain.partition
        self.severity_fn = severity_fn
        self.max_flood_fraction = float(max_flood_fraction)
        self._region_alt_samples = self._sample_region_altitudes(grid_resolution)

    def _sample_region_altitudes(self, n: int) -> dict[int, np.ndarray]:
        part = self.partition
        xs = np.linspace(0.0, part.width_m, n)
        ys = np.linspace(0.0, part.height_m, n)
        gx, gy = np.meshgrid(xs, ys)
        xy = np.column_stack([gx.ravel(), gy.ravel()])
        alts = self.terrain.altitude_many(xy)
        regions = part.region_of_many(xy)
        samples: dict[int, np.ndarray] = {}
        for rid in part.region_ids:
            vals = np.sort(alts[regions == rid])
            if vals.size == 0:
                # A seed so crowded no grid point lands in its cell; fall
                # back to the seed altitude so queries stay well-defined.
                vals = np.array([self.terrain.altitude(*part.seed_xy(rid))])
            samples[rid] = vals
        return samples

    def waterline_m(self, region_id: int, t_seconds: float) -> float:
        """Flood waterline altitude for a region at time ``t`` (meters).

        Terrain at or below the waterline is flooded.  Severity 0 puts the
        waterline below the region's minimum altitude (nothing flooded).
        """
        severity = float(np.clip(self.severity_fn(region_id, t_seconds), 0.0, 1.0))
        alts = self._region_alt_samples[region_id]
        if severity <= 0.0:
            return float(alts[0]) - 1.0
        frac = self.max_flood_fraction * severity
        return float(np.quantile(alts, frac))

    def is_flooded(self, x: float, y: float, t_seconds: float) -> bool:
        """Whether a plane point is inside a flood zone at time ``t``."""
        rid = self.partition.region_of(x, y)
        return self.terrain.altitude(x, y) <= self.waterline_m(rid, t_seconds)

    def is_flooded_many(self, xy: np.ndarray, t_seconds: float) -> np.ndarray:
        """Vectorized flood query for an (N, 2) array of plane points."""
        xy = np.asarray(xy, dtype=float)
        alts = self.terrain.altitude_many(xy)
        regions = self.partition.region_of_many(xy)
        # One waterline per region, then broadcast — the quantile lookup is
        # the expensive part.
        per_region = {
            rid: self.waterline_m(rid, t_seconds) for rid in self.partition.region_ids
        }
        waterlines = np.array([per_region[int(r)] for r in regions])
        return alts <= waterlines

    def flooded_fraction(self, region_id: int, t_seconds: float) -> float:
        """Share of a region's terrain currently underwater, in [0, 1]."""
        alts = self._region_alt_samples[region_id]
        waterline = self.waterline_m(region_id, t_seconds)
        return float(np.mean(alts <= waterline))

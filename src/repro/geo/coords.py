"""Coordinates: geographic points, distances and a local metric projection.

All simulation-internal geometry happens on a local equirectangular plane in
meters; lat/lon only appears at the dataset boundary (GPS records, bounding
boxes).  That matches the paper's pipeline, where raw cellphone fixes are
cleaned and snapped onto a landmark road network before any dispatching
logic runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True)
class GeoPoint:
    """A geographic position in degrees (WGS-84 semantics are not needed;
    the equirectangular projection below is accurate to well under 0.1% at
    city scale)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude {self.lat} out of range [-90, 90]")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"longitude {self.lon} out of range [-180, 180]")


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two geographic points, in meters."""
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = phi2 - phi1
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned geographic bounding box (south-west / north-east corners)."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south >= self.north:
            raise ValueError("south latitude must be strictly below north latitude")
        if self.west >= self.east:
            raise ValueError("west longitude must be strictly below east longitude")

    @property
    def south_west(self) -> GeoPoint:
        return GeoPoint(self.south, self.west)

    @property
    def north_east(self) -> GeoPoint:
        return GeoPoint(self.north, self.east)

    @property
    def center(self) -> GeoPoint:
        return GeoPoint((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    def contains(self, p: GeoPoint) -> bool:
        return self.south <= p.lat <= self.north and self.west <= p.lon <= self.east


#: The bounding box the paper uses to crop OpenStreetMap data for Charlotte
#: (Section III-A): SW (35.6022, -79.0735), NE (36.0070, -78.2592).
CHARLOTTE_BBOX = BoundingBox(south=35.6022, west=-79.0735, north=36.0070, east=-78.2592)


class LocalProjection:
    """Equirectangular projection around a bounding box.

    Maps geographic coordinates to a local (x, y) plane in meters with the
    origin at the box's south-west corner, x pointing east and y pointing
    north.
    """

    def __init__(self, bbox: BoundingBox) -> None:
        self.bbox = bbox
        self._lat0 = bbox.south
        self._lon0 = bbox.west
        self._cos_lat = math.cos(math.radians(bbox.center.lat))
        self._m_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
        self._m_per_deg_lon = self._m_per_deg_lat * self._cos_lat

    @property
    def width_m(self) -> float:
        """East-west extent of the bounding box in meters."""
        return (self.bbox.east - self.bbox.west) * self._m_per_deg_lon

    @property
    def height_m(self) -> float:
        """North-south extent of the bounding box in meters."""
        return (self.bbox.north - self.bbox.south) * self._m_per_deg_lat

    def to_xy(self, p: GeoPoint) -> tuple[float, float]:
        """Project a geographic point to local plane coordinates (meters)."""
        x = (p.lon - self._lon0) * self._m_per_deg_lon
        y = (p.lat - self._lat0) * self._m_per_deg_lat
        return x, y

    def to_geo(self, x: float, y: float) -> GeoPoint:
        """Unproject local plane coordinates (meters) back to lat/lon."""
        lon = self._lon0 + x / self._m_per_deg_lon
        lat = self._lat0 + y / self._m_per_deg_lat
        return GeoPoint(lat, lon)

    def contains_xy(self, x: float, y: float) -> bool:
        return 0.0 <= x <= self.width_m and 0.0 <= y <= self.height_m


def euclidean_m(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Planar distance between two projected points, in meters."""
    return math.hypot(a[0] - b[0], a[1] - b[1])

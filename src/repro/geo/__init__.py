"""Geographic primitives: coordinates, region partition, flood model.

The paper works on Charlotte, NC inside the bounding box with south-west
corner (35.6022, -79.0735) and north-east corner (36.0070, -78.2592), and
partitions the city into 7 council-district regions (Fig. 1).  This package
provides the coordinate plumbing (lat/lon <-> local metric plane), the
7-region partition, and the flood-zone model that stands in for the National
Weather Service satellite imaging of flooded areas.
"""

from repro.geo.coords import (
    BoundingBox,
    CHARLOTTE_BBOX,
    GeoPoint,
    LocalProjection,
    haversine_m,
)
from repro.geo.flood import FloodModel
from repro.geo.regions import (
    CHARLOTTE_REGION_PROFILES,
    RegionPartition,
    RegionProfile,
    charlotte_regions,
)
from repro.geo.terrain import TerrainField

__all__ = [
    "BoundingBox",
    "CHARLOTTE_BBOX",
    "CHARLOTTE_REGION_PROFILES",
    "FloodModel",
    "GeoPoint",
    "LocalProjection",
    "RegionPartition",
    "RegionProfile",
    "TerrainField",
    "charlotte_regions",
    "haversine_m",
]

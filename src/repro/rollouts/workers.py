"""The rollout worker process loop.

Each worker owns a private task queue and a private message queue — a
worker killed mid-``put`` can corrupt at most its own channel, which the
coordinator treats the same as any other death.  The loop is austere by
design: pull a spec, run the episode (beating through the heartbeat
callback), seal the payload in a checksummed envelope, send it back.

Injected faults execute *here*, in the real child process: a planned
crash is an ``os._exit`` mid-episode (no atexit, no queue flush — as
close to ``kill -9`` as a process can do to itself), a stall is a real
sleep long enough to miss heartbeats, and a corrupt result flips the
payload after the checksum so the coordinator's integrity check must
catch it.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import multiprocessing

    from repro.faults.models import WorkerFaultInjector
    from repro.rollouts.spec import EpisodeSpec
    from repro.rollouts.tasks import RolloutTask

from repro.rollouts.spec import wrap_result

#: Exit code a fault-crashed worker dies with (visible in incidents).
CRASH_EXIT_CODE = 17


def worker_main(
    worker_id: int,
    task: "RolloutTask",
    context: Any,
    task_queue: "multiprocessing.Queue[Any]",
    msg_queue: "multiprocessing.Queue[Any]",
    injector: "WorkerFaultInjector | None",
    beat_interval_s: float,
    parent_pid: int,
) -> None:
    """Run episodes until the ``None`` sentinel (or orphaned, or killed).

    ``worker_id`` exists for logging and fault *observation* only — the
    fault plan, the episode seed and the payload are all functions of the
    episode, never of this id (REP403 guards that boundary).
    """
    while True:
        # A SIGKILLed coordinator cannot clean us up; detect re-parenting
        # and exit rather than linger as an orphan holding the store lock.
        if os.getppid() != parent_pid:  # repro: allow-worker-ident -- orphan detection only; never flows into seeds or results
            os._exit(0)
        try:
            item = task_queue.get(timeout=beat_interval_s)
        except queue_mod.Empty:
            msg_queue.put(("beat",))
            continue
        if item is None:
            return
        spec, attempt = item
        _run_one(task, context, spec, attempt, msg_queue, injector)


def _run_one(
    task: "RolloutTask",
    context: Any,
    spec: "EpisodeSpec",
    attempt: int,
    msg_queue: "multiprocessing.Queue[Any]",
    injector: "WorkerFaultInjector | None",
) -> None:
    plan = None
    if injector is not None:
        plan = injector.plan(spec.episode_id, attempt)
        if plan.stall_s > 0.0:
            # A stalled worker stops beating; the supervisor must kill us.
            time.sleep(plan.stall_s)
    beats = 0

    def beat() -> None:
        nonlocal beats
        if (
            plan is not None
            and plan.crash_after_beats is not None
            and beats >= plan.crash_after_beats
        ):
            # Death BEFORE the put: the channel stays clean, the episode
            # is genuinely lost mid-flight, and the supervisor finds out
            # only through the silence.
            os._exit(CRASH_EXIT_CODE)
        beats += 1
        msg_queue.put(("beat",))

    try:
        payload = task.run_episode(context, spec, beat)
    except Exception as exc:  # repro: allow-broad-except -- converted to a typed error message; the coordinator records and retries
        msg_queue.put(
            ("error", spec.episode_id, attempt, f"{type(exc).__name__}: {exc}")
        )
        return
    envelope = wrap_result(spec, payload)
    if plan is not None and plan.corrupt_result:
        # Flip the payload after sealing: the digest no longer matches and
        # the coordinator must reject the envelope, not merge it.
        envelope = dict(envelope)
        envelope["payload"] = dict(envelope["payload"])
        envelope["payload"]["__corrupted__"] = True
    msg_queue.put(("result", spec.episode_id, attempt, envelope))

"""Order-insensitive merge reducers for rollout results.

The REP401/REP402 discipline applied to episode collection: results
arrive in whatever order workers finish (scrambled further by retries
and deaths), so every reducer here folds over ``sorted-by-episode-id``
sequences and nothing else.  The merged output is a pure function of
the *set* of results — parallel runs are bit-identical to serial runs
regardless of worker count, completion order, or how many workers died
along the way.

Duplicates are rejected loudly rather than deduplicated silently: a
correct executor never commits the same episode twice, so a duplicate
reaching the merge is a coordinator bug worth crashing on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.core.artifacts import sha256_json
from repro.ml.replay import Transition
from repro.rollouts.spec import EpisodeResult

if TYPE_CHECKING:
    from repro.ml.replay import ReplayBuffer


class DuplicateEpisodeError(ValueError):
    """The same episode id was merged twice — a coordinator bug."""


def merge_results(results: Iterable[EpisodeResult]) -> "MergedRollouts":
    """Fold results into canonical episode-id order, rejecting duplicates."""
    by_id: dict[int, EpisodeResult] = {}
    for result in results:
        if result.episode_id in by_id:
            raise DuplicateEpisodeError(
                f"episode {result.episode_id} merged twice"
            )
        by_id[result.episode_id] = result
    ordered = tuple(by_id[eid] for eid in sorted(by_id))
    return MergedRollouts(results=ordered)


@dataclass(frozen=True)
class MergedRollouts:
    """The canonical, order-free view of a completed campaign."""

    results: tuple[EpisodeResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    @property
    def episode_ids(self) -> tuple[int, ...]:
        return tuple(r.episode_id for r in self.results)

    def restrict(self, episode_ids: Iterable[int]) -> "MergedRollouts":
        """The sub-merge over a subset of episodes (still sorted)."""
        keep = set(episode_ids)
        return MergedRollouts(
            results=tuple(r for r in self.results if r.episode_id in keep)
        )

    def as_json(self) -> dict[str, Any]:
        """Canonical JSON form; the basis of :meth:`fingerprint`."""
        return {
            "episodes": [
                {
                    "episode_id": r.episode_id,
                    "kind": r.kind,
                    "payload": r.payload,
                }
                for r in self.results
            ]
        }

    def fingerprint(self) -> str:
        """SHA-256 of the canonical merged form.

        Two campaigns are bit-identical iff their fingerprints match;
        this is the equality the chaos harness and the parallel-vs-serial
        smoke checks assert.
        """
        return sha256_json(self.as_json())

    # -- eval reduction --------------------------------------------------------

    def eval_table(self) -> dict[str, Any]:
        """Aggregate eval-episode payloads into one summary table.

        Sums and means fold in episode-id order; any numeric field shared
        by every payload is aggregated, so the table's layout is stable
        across task variants.
        """
        rows = []
        for r in self.results:
            row = {"episode_id": r.episode_id}
            row.update(
                {
                    k: v
                    for k, v in sorted(r.payload.items())
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                }
            )
            rows.append(row)
        # Seeds are identity, not measurement: keep them in the rows but
        # out of the aggregates.
        numeric_keys = sorted(
            {k for row in rows for k in row}
            - {"episode_id", "sim_seed", "day"}
        )
        totals = {
            k: float(sum(row.get(k, 0.0) for row in rows)) for k in numeric_keys
        }
        means = {
            k: (totals[k] / len(rows) if rows else 0.0) for k in numeric_keys
        }
        return {
            "episodes": rows,
            "totals": totals,
            "means": means,
            "count": len(rows),
        }

    # -- training reduction ----------------------------------------------------

    def transitions(self) -> list[Transition]:
        """Every collected transition, in (episode id, step) order."""
        out: list[Transition] = []
        for r in self.results:
            for item in r.payload.get("transitions", []):
                state, action, reward, next_state, done = item
                out.append(
                    Transition(
                        state=np.asarray(state, dtype=np.float64),
                        action=int(action),
                        reward=float(reward),
                        next_state=np.asarray(next_state, dtype=np.float64),
                        done=bool(done),
                    )
                )
        return out

    def feed_replay(self, buffer: "ReplayBuffer") -> int:
        """Push every merged transition into a replay buffer, in order.

        Returns the number of transitions pushed.  Feeding the same
        merged campaign into two fresh buffers produces byte-identical
        buffer state — the replay-level equality the merge tests assert.
        """
        transitions = self.transitions()
        for tr in transitions:
            buffer.push(tr)
        return len(transitions)

    def replay_arrays(self) -> dict[str, np.ndarray]:
        """Merged transitions as flat arrays (for fingerprinting buffers)."""
        transitions = self.transitions()
        if not transitions:
            return {
                "states": np.zeros((0, 0)),
                "actions": np.zeros(0, dtype=np.int64),
                "rewards": np.zeros(0),
                "next_states": np.zeros((0, 0)),
                "dones": np.zeros(0, dtype=bool),
            }
        return {
            "states": np.stack([t.state for t in transitions]),
            "actions": np.array([t.action for t in transitions], dtype=np.int64),
            "rewards": np.array([t.reward for t in transitions]),
            "next_states": np.stack([t.next_state for t in transitions]),
            "dones": np.array([t.done for t in transitions], dtype=bool),
        }


def drain_transitions(buffer: "ReplayBuffer") -> list[list[Any]]:
    """Serialize a replay buffer's contents in insertion order.

    Used by the training-collect task to ship episode transitions over
    the wire as plain JSON.  The ring math recovers insertion order from
    ``(head, size)``: element ``i`` of the logical sequence lives at
    ``(head - size + i) mod capacity``.
    """
    state = buffer.get_state()
    capacity, _state_dim, size, head = (int(x) for x in state["meta"])
    out: list[list[Any]] = []
    for i in range(size):
        j = (head - size + i) % capacity
        out.append(
            [
                [float(x) for x in state["states"][j]],
                int(state["actions"][j]),
                float(state["rewards"][j]),
                [float(x) for x in state["next_states"][j]],
                bool(state["dones"][j]),
            ]
        )
    return out

"""Fault-tolerant parallel episode rollouts.

A multi-process rollout executor feeding both DQN experience collection
(:mod:`repro.core.training`) and the evaluation harnesses
(:mod:`repro.eval`), built the way this codebase does everything:
supervised (heartbeat watchdog, bounded retries, poison-episode
quarantine, graceful degradation to serial), fault-injected (real
worker process deaths via ``repro chaos --profile worker-*``), and
provably equivalent — a parallel run's merged output is bit-identical
to the serial seed path regardless of worker count, completion order,
or mid-run deaths, and SIGKILL-and-resume of the coordinator is
bit-identical through the per-episode store.

Typical use::

    from repro.rollouts import (
        EpisodeSpec, EvalRolloutTask, RolloutConfig, RolloutExecutor,
    )

    task = EvalRolloutTask(scenario, requests, t0_s, t1_s, num_teams=20)
    specs = [EpisodeSpec(i, task.kind, seed=0) for i in range(16)]
    report = RolloutExecutor(task, RolloutConfig(num_workers=4)).run(specs)
    table = report.merged.eval_table()
"""

from repro.rollouts.executor import (
    PoisonedEpisode,
    RolloutConfig,
    RolloutExecutor,
    RolloutIncident,
    RolloutReport,
    RolloutSupervisor,
    run_rollouts_serial,
)
from repro.rollouts.merge import (
    DuplicateEpisodeError,
    MergedRollouts,
    drain_transitions,
    merge_results,
)
from repro.rollouts.spec import (
    CorruptResultError,
    EpisodeResult,
    EpisodeSpec,
    backoff_rng,
    episode_rng,
    episode_sim_seed,
    unwrap_result,
    wrap_result,
)
from repro.rollouts.store import RolloutStore
from repro.rollouts.tasks import (
    EvalRolloutTask,
    RolloutTask,
    SyntheticTask,
    TrainingCollectTask,
    build_training_collect_task,
)

__all__ = [
    "CorruptResultError",
    "DuplicateEpisodeError",
    "EpisodeResult",
    "EpisodeSpec",
    "EvalRolloutTask",
    "MergedRollouts",
    "PoisonedEpisode",
    "RolloutConfig",
    "RolloutExecutor",
    "RolloutIncident",
    "RolloutReport",
    "RolloutStore",
    "RolloutSupervisor",
    "RolloutTask",
    "SyntheticTask",
    "TrainingCollectTask",
    "backoff_rng",
    "build_training_collect_task",
    "drain_transitions",
    "episode_rng",
    "episode_sim_seed",
    "merge_results",
    "run_rollouts_serial",
    "unwrap_result",
    "wrap_result",
]

"""Durable per-episode result cells: the coordinator's checkpoint layer.

One JSON file per completed episode, written atomically through
:mod:`repro.core.artifacts` (PR 2), each embedding the spec it answers
and a SHA-256 of the result envelope.  Resume is therefore trivial and
paranoid at once: preload every cell, silently discard anything
malformed, checksum-mismatched, or answering a *different* spec (the
campaign may have changed under the directory), and re-run exactly the
episodes without a valid cell.  Because a cell's payload is a pure
function of its spec, a resumed campaign merges bit-identically to an
uninterrupted one.
"""

from __future__ import annotations

import json
import logging
import pathlib
from typing import Any

from repro.core.artifacts import atomic_write_json, sha256_json
from repro.rollouts.spec import CorruptResultError, EpisodeSpec, unwrap_result

logger = logging.getLogger("repro.rollouts")

FORMAT = "repro-rollout-cell"


class RolloutStore:
    """Crash-safe, resumable storage of per-episode result envelopes."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, episode_id: int) -> pathlib.Path:
        return self.root / f"episode={int(episode_id):06d}.json"

    def put(self, spec: EpisodeSpec, envelope: dict[str, Any]) -> None:
        """Commit one verified envelope (atomic write + embedded digest)."""
        cell = {
            "format": FORMAT,
            "spec": spec.as_json(),
            "sha256": sha256_json(envelope),
            "envelope": envelope,
        }
        atomic_write_json(self._path(spec.episode_id), cell)

    def get(self, spec: EpisodeSpec) -> dict[str, Any] | None:
        """The stored envelope for ``spec``, or ``None`` when absent/invalid.

        Every rejection is logged and treated as a cache miss — the
        episode simply re-runs — so a torn write or stale campaign can
        cost time but never correctness.
        """
        path = self._path(spec.episode_id)
        if not path.exists():
            return None
        try:
            cell = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            logger.warning("discarding unreadable cell %s: %s", path.name, exc)
            return None
        if not isinstance(cell, dict) or cell.get("format") != FORMAT:
            logger.warning("discarding cell %s: wrong format", path.name)
            return None
        if cell.get("spec") != spec.as_json():
            logger.warning("discarding cell %s: spec mismatch", path.name)
            return None
        envelope = cell.get("envelope")
        if sha256_json(envelope) != cell.get("sha256"):
            logger.warning("discarding cell %s: digest mismatch", path.name)
            return None
        try:
            unwrap_result(envelope)
        except CorruptResultError as exc:
            logger.warning("discarding cell %s: %s", path.name, exc)
            return None
        assert isinstance(envelope, dict)
        return envelope

"""Episode specs, seeding, and the checksummed result envelope.

The determinism contract starts here.  An :class:`EpisodeSpec` is the
*only* input a worker gets, and every random draw inside an episode
comes from a generator keyed ``(campaign seed, episode tag, episode
id)`` — never from the worker that happens to run it, the process id,
or the wall clock.  Because an episode's result is a pure function of
its spec, any two successful attempts of the same episode produce
byte-identical payloads, which is what makes retries, worker deaths,
and completion-order scrambling invisible to the merged output.

Results travel between processes wrapped in a checksummed envelope:
the coordinator re-hashes the payload on receipt and rejects any
envelope whose digest does not match (a :class:`CorruptResultError`),
so a corrupting worker can cost an attempt but never poison the merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.artifacts import sha256_json

# Substream tags for the rollout layer, registered centrally in
# repro.core.streams — disjoint from the fault-family tags (101-114)
# by construction, and the REP6xx project lint proves it.
from repro.core.streams import STREAM_ROLLOUT_BACKOFF, STREAM_ROLLOUT_EPISODE

#: Envelope format marker; bump the version on layout changes.
RESULT_FORMAT = "repro-rollout-result"
RESULT_VERSION = 1


class CorruptResultError(ValueError):
    """A result envelope failed its integrity check."""


@dataclass(frozen=True)
class EpisodeSpec:
    """One unit of rollout work, picklable and worker-agnostic.

    ``options`` is a flat tuple of ``(key, value)`` string pairs so the
    spec stays hashable and its JSON form is canonical.
    """

    episode_id: int
    kind: str
    seed: int
    options: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.episode_id < 0:
            raise ValueError("episode_id must be non-negative")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")

    def as_json(self) -> dict[str, Any]:
        return {
            "episode_id": self.episode_id,
            "kind": self.kind,
            "seed": self.seed,
            "options": [list(pair) for pair in self.options],
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "EpisodeSpec":
        return cls(
            episode_id=int(payload["episode_id"]),
            kind=str(payload["kind"]),
            seed=int(payload["seed"]),
            options=tuple(
                (str(k), str(v)) for k, v in payload.get("options", [])
            ),
        )


def episode_rng(spec: EpisodeSpec) -> np.random.Generator:
    """The episode's private generator.

    Keyed by ``(seed, episode tag, episode id)`` only: which worker runs
    the episode, and on which attempt, cannot change a single draw.
    """
    return np.random.default_rng([spec.seed, STREAM_ROLLOUT_EPISODE, spec.episode_id])


def episode_sim_seed(spec: EpisodeSpec) -> int:
    """A derived integer seed for components that take plain ints."""
    return int(episode_rng(spec).integers(0, 2**31 - 1))


def backoff_rng(seed: int, episode_id: int, attempt: int) -> np.random.Generator:
    """Jitter stream for retry backoff — keyed by episode, not worker."""
    return np.random.default_rng([seed, STREAM_ROLLOUT_BACKOFF, episode_id, attempt])


@dataclass(frozen=True)
class EpisodeResult:
    """One completed episode: the spec identity plus its JSON payload."""

    episode_id: int
    kind: str
    payload: dict[str, Any]


def wrap_result(spec: EpisodeSpec, payload: dict[str, Any]) -> dict[str, Any]:
    """Seal a payload into the checksummed wire envelope."""
    return {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "episode_id": spec.episode_id,
        "kind": spec.kind,
        "payload": payload,
        "sha256": sha256_json(payload),
    }


def unwrap_result(envelope: Any) -> EpisodeResult:
    """Verify and open an envelope; raise :class:`CorruptResultError`.

    Every check is loud: a malformed envelope, a version skew, or a
    digest mismatch each names what was wrong so incident records stay
    diagnosable.
    """
    if not isinstance(envelope, dict):
        raise CorruptResultError(
            f"result envelope is {type(envelope).__name__}, not a dict"
        )
    if envelope.get("format") != RESULT_FORMAT:
        raise CorruptResultError(
            f"unexpected envelope format {envelope.get('format')!r}"
        )
    if envelope.get("version") != RESULT_VERSION:
        raise CorruptResultError(
            f"unsupported envelope version {envelope.get('version')!r}"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise CorruptResultError("envelope payload is not a dict")
    digest = sha256_json(payload)
    if digest != envelope.get("sha256"):
        raise CorruptResultError(
            f"payload digest mismatch: {digest[:12]} != "
            f"{str(envelope.get('sha256'))[:12]}"
        )
    return EpisodeResult(
        episode_id=int(envelope["episode_id"]),
        kind=str(envelope["kind"]),
        payload=payload,
    )

"""The fault-tolerant parallel rollout executor.

Topology: the coordinator owns N forked worker processes, each with a
*private* task queue and message queue (a worker killed mid-``put`` can
corrupt only its own channel).  Episode specs fan out to idle workers;
heartbeats, results and typed errors flow back.  A
:class:`RolloutSupervisor` — the PR 6 ``ShardSupervisor`` state machine
re-cut for processes — watches heartbeats on an injectable clock:

* a worker whose beats stop (crash, stall, livelock) is killed and its
  in-flight episode requeued;
* failed attempts retry with the PR 2 :class:`~repro.core.runner`
  backoff policy, jittered by an episode-keyed stream (never by worker
  or wall-clock identity);
* an episode that kills its worker ``kill_quarantine_threshold`` times
  is a *poison episode*: it is quarantined to a bounded ring with a
  full incident record instead of eating the whole worker pool;
* when workers keep dying past the restart budget the executor degrades
  gracefully: it stops forking and finishes the remaining episodes
  serially in-process rather than failing the campaign.

Determinism contract: an episode's payload is a pure function of its
spec, results merge through order-insensitive sorted folds, and
completed episodes checkpoint through the PR 2 artifact layer — so a
parallel run is bit-identical to the serial path regardless of worker
count, completion order, mid-run deaths, or a SIGKILL of the
coordinator itself (resume re-reads the store and re-runs only the
missing episodes).
"""

from __future__ import annotations

import heapq
import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.core.runner import RetryPolicy
from repro.rollouts.merge import MergedRollouts, merge_results
from repro.rollouts.spec import (
    CorruptResultError,
    EpisodeSpec,
    backoff_rng,
    unwrap_result,
    wrap_result,
)

if TYPE_CHECKING:
    import multiprocessing

    from repro.faults.models import WorkerFaultInjector
    from repro.rollouts.store import RolloutStore
    from repro.rollouts.tasks import RolloutTask

logger = logging.getLogger("repro.rollouts")

#: The executor's default clock is injected, never called inline — the
#: REP403 gate bans wall-clock *calls* in this package, which makes
#: passing a reference the one sanctioned pattern (tests inject
#: :class:`~repro.service.deadline.ManualClock`).
_DEFAULT_CLOCK = time.monotonic


@dataclass(frozen=True)
class RolloutConfig:
    """Executor tuning knobs; the defaults suit real campaigns."""

    num_workers: int = 2
    heartbeat_timeout_s: float = 30.0
    beat_interval_s: float = 0.2
    poll_interval_s: float = 0.01
    kill_quarantine_threshold: int = 2
    max_worker_restarts: int = 8
    max_poison: int = 16
    max_incidents: int = 256
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_delay_s=0.05, max_delay_s=1.0
        )
    )
    join_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be positive")
        if self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if self.beat_interval_s <= 0:
            raise ValueError("beat_interval_s must be positive")
        if self.beat_interval_s >= self.heartbeat_timeout_s:
            raise ValueError("beat_interval_s must be below heartbeat_timeout_s")
        if self.kill_quarantine_threshold < 1:
            raise ValueError("kill_quarantine_threshold must be positive")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be non-negative")
        if self.max_poison < 1 or self.max_incidents < 1:
            raise ValueError("ring bounds must be positive")


@dataclass(frozen=True)
class RolloutIncident:
    """One recorded supervision event (bounded ring, oldest dropped)."""

    kind: str
    message: str
    t_s: float
    episode_id: int | None = None
    worker_id: int | None = None

    def as_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "t_s": self.t_s,
            "episode_id": self.episode_id,
            "worker_id": self.worker_id,
        }


@dataclass(frozen=True)
class PoisonedEpisode:
    """A quarantined episode and the full story of why."""

    episode_id: int
    kills: int
    attempts: int
    reasons: tuple[str, ...]

    def as_json(self) -> dict[str, Any]:
        return {
            "episode_id": self.episode_id,
            "kills": self.kills,
            "attempts": self.attempts,
            "reasons": list(self.reasons),
        }


@dataclass
class _WorkerWatch:
    """Supervisor-side view of one live worker."""

    worker_id: int
    last_beat_s: float
    inflight: tuple[int, int] | None = None  # (episode_id, attempt)


class RolloutSupervisor:
    """Heartbeat watchdog and incident ledger for the worker pool.

    Pure bookkeeping on an injectable clock — no processes, no queues —
    so the state machine is unit-testable with
    :class:`~repro.service.deadline.ManualClock` and reusable by any
    executor shape.
    """

    def __init__(
        self,
        heartbeat_timeout_s: float,
        clock: Callable[[], float],
        max_incidents: int = 256,
    ) -> None:
        if heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._clock = clock
        self._watch: dict[int, _WorkerWatch] = {}
        self._incidents: deque[RolloutIncident] = deque(maxlen=max_incidents)
        self.incidents_dropped = 0
        self.deaths = 0

    # -- lifecycle -------------------------------------------------------------

    def on_spawn(self, worker_id: int) -> None:
        self._watch[worker_id] = _WorkerWatch(
            worker_id=worker_id, last_beat_s=self._clock()
        )

    def on_beat(self, worker_id: int) -> None:
        watch = self._watch.get(worker_id)
        if watch is not None:
            watch.last_beat_s = self._clock()

    def on_assign(self, worker_id: int, episode_id: int, attempt: int) -> None:
        watch = self._watch[worker_id]
        watch.inflight = (episode_id, attempt)
        # An assignment counts as contact: the timeout clock restarts.
        watch.last_beat_s = self._clock()

    def on_complete(self, worker_id: int) -> None:
        watch = self._watch.get(worker_id)
        if watch is not None:
            watch.inflight = None
            watch.last_beat_s = self._clock()

    def inflight(self, worker_id: int) -> tuple[int, int] | None:
        watch = self._watch.get(worker_id)
        return watch.inflight if watch is not None else None

    def idle_workers(self) -> list[int]:
        return sorted(
            w.worker_id for w in self._watch.values() if w.inflight is None
        )

    def live_workers(self) -> list[int]:
        return sorted(self._watch)

    # -- failure detection -----------------------------------------------------

    def overdue(self) -> list[int]:
        """Workers whose last contact is older than the timeout."""
        now = self._clock()
        return sorted(
            w.worker_id
            for w in self._watch.values()
            if now - w.last_beat_s > self.heartbeat_timeout_s
        )

    def on_death(self, worker_id: int, reason: str) -> tuple[int, int] | None:
        """Retire a dead worker; return its in-flight (episode, attempt)."""
        watch = self._watch.pop(worker_id, None)
        inflight = watch.inflight if watch is not None else None
        self.deaths += 1
        self.record(
            "worker_death",
            reason,
            episode_id=inflight[0] if inflight else None,
            worker_id=worker_id,
        )
        return inflight

    # -- incidents -------------------------------------------------------------

    def record(
        self,
        kind: str,
        message: str,
        episode_id: int | None = None,
        worker_id: int | None = None,
    ) -> None:
        if len(self._incidents) == self._incidents.maxlen:
            self.incidents_dropped += 1
        self._incidents.append(
            RolloutIncident(
                kind=kind,
                message=message,
                t_s=self._clock(),
                episode_id=episode_id,
                worker_id=worker_id,
            )
        )

    @property
    def incidents(self) -> tuple[RolloutIncident, ...]:
        return tuple(self._incidents)


@dataclass
class _EpisodeState:
    """Coordinator-side retry/quarantine bookkeeping for one episode."""

    spec: EpisodeSpec
    attempts: int = 0
    kills: int = 0
    reasons: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class RolloutReport:
    """Everything a campaign run produced, merged and accounted for."""

    merged: MergedRollouts
    total: int
    completed: int
    from_store: int
    quarantined: tuple[PoisonedEpisode, ...]
    quarantined_ids: tuple[int, ...]
    poison_dropped: int
    incidents: tuple[RolloutIncident, ...]
    incidents_dropped: int
    worker_deaths: int
    workers_spawned: int
    degraded: bool
    num_workers: int

    @property
    def zero_lost(self) -> bool:
        """Every episode is either merged or quarantined-with-a-record."""
        return self.completed + len(self.quarantined_ids) == self.total

    def summary(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "completed": self.completed,
            "from_store": self.from_store,
            "quarantined": [p.as_json() for p in self.quarantined],
            "quarantined_ids": list(self.quarantined_ids),
            "poison_dropped": self.poison_dropped,
            "incidents": [i.as_json() for i in self.incidents],
            "incidents_dropped": self.incidents_dropped,
            "worker_deaths": self.worker_deaths,
            "workers_spawned": self.workers_spawned,
            "degraded": self.degraded,
            "num_workers": self.num_workers,
            "zero_lost": self.zero_lost,
            "fingerprint": self.merged.fingerprint(),
        }


def _validate_specs(specs: Sequence[EpisodeSpec]) -> None:
    seen: set[int] = set()
    for spec in specs:
        if spec.episode_id in seen:
            raise ValueError(f"duplicate episode_id {spec.episode_id}")
        seen.add(spec.episode_id)


class RolloutExecutor:
    """Fan episode specs across supervised worker processes and merge."""

    def __init__(
        self,
        task: "RolloutTask",
        config: RolloutConfig | None = None,
        seed: int = 0,
        fault_injector: "WorkerFaultInjector | None" = None,
        clock: Callable[[], float] | None = None,
        store: "RolloutStore | None" = None,
        mp_context: str = "fork",
    ) -> None:
        self.task = task
        self.config = config or RolloutConfig()
        self.seed = int(seed)
        self.fault_injector = fault_injector
        self._clock = clock if clock is not None else _DEFAULT_CLOCK
        self.store = store
        self._mp_context = mp_context

    # -- the campaign ----------------------------------------------------------

    def run(self, specs: Sequence[EpisodeSpec]) -> RolloutReport:
        import multiprocessing
        import os

        cfg = self.config
        specs = list(specs)
        _validate_specs(specs)
        supervisor = RolloutSupervisor(
            cfg.heartbeat_timeout_s, self._clock, cfg.max_incidents
        )
        states = {s.episode_id: _EpisodeState(spec=s) for s in specs}
        done: dict[int, Any] = {}  # episode_id -> verified envelope
        quarantined: dict[int, PoisonedEpisode] = {}
        poison_ring: deque[PoisonedEpisode] = deque(maxlen=cfg.max_poison)
        poison_dropped = 0
        from_store = 0

        # Resume: everything with a valid store cell is already done.
        if self.store is not None:
            for spec in specs:
                envelope = self.store.get(spec)
                if envelope is not None:
                    done[spec.episode_id] = envelope
                    from_store += 1
        if from_store:
            supervisor.record(
                "resume", f"{from_store} episodes restored from store"
            )

        #: (ready_at_s, episode_id) min-heap of runnable attempts.
        ready: list[tuple[float, int]] = []
        now = self._clock()
        for spec in specs:
            if spec.episode_id not in done:
                heapq.heappush(ready, (now, spec.episode_id))

        ctx = multiprocessing.get_context(self._mp_context)
        context = self.task.build_context()
        parent_pid = os.getpid()  # repro: allow-worker-ident -- orphan-detection anchor only; never flows into seeds or results

        workers: dict[int, Any] = {}  # worker_id -> (proc, task_q, msg_q)
        next_worker_id = 0
        workers_spawned = 0
        degraded = False

        def outstanding() -> int:
            return len(states) - len(done) - len(quarantined)

        def quarantine(state: _EpisodeState, reason: str) -> None:
            nonlocal poison_dropped
            state.reasons.append(reason)
            record = PoisonedEpisode(
                episode_id=state.spec.episode_id,
                kills=state.kills,
                attempts=state.attempts,
                reasons=tuple(state.reasons),
            )
            quarantined[state.spec.episode_id] = record
            if len(poison_ring) == poison_ring.maxlen:
                poison_dropped += 1
            poison_ring.append(record)
            supervisor.record(
                "quarantine", reason, episode_id=state.spec.episode_id
            )

        def schedule_retry(state: _EpisodeState, reason: str) -> None:
            """Retry, or quarantine when the episode is out of budget."""
            eid = state.spec.episode_id
            state.reasons.append(reason)
            if state.kills >= cfg.kill_quarantine_threshold:
                quarantine(state, f"killed its worker {state.kills} times")
                return
            if state.attempts >= cfg.retry.max_attempts:
                quarantine(
                    state, f"retries exhausted after {state.attempts} attempts"
                )
                return
            attempt = state.attempts - 1  # the attempt that just failed
            delay = cfg.retry.delay_s(
                max(attempt, 0), backoff_rng(self.seed, eid, max(attempt, 0))
            )
            heapq.heappush(ready, (self._clock() + delay, eid))

        def spawn_worker() -> None:
            nonlocal next_worker_id, workers_spawned
            worker_id = next_worker_id
            next_worker_id += 1
            task_q: Any = ctx.Queue()
            msg_q: Any = ctx.Queue()
            proc = ctx.Process(
                target=_worker_entry,
                args=(
                    worker_id,
                    self.task,
                    context,
                    task_q,
                    msg_q,
                    self.fault_injector,
                    cfg.beat_interval_s,
                    parent_pid,
                ),
                daemon=True,
            )
            proc.start()
            workers[worker_id] = (proc, task_q, msg_q)
            workers_spawned += 1
            supervisor.on_spawn(worker_id)

        def retire_worker(worker_id: int, reason: str) -> None:
            """Kill/reap one worker and requeue whatever it was running."""
            proc, task_q, msg_q = workers.pop(worker_id)
            if proc.is_alive():
                proc.kill()
            proc.join(cfg.join_timeout_s)
            # A killed worker's queues may hold half-written data; drop
            # them without blocking on their feeder threads.
            for q in (task_q, msg_q):
                q.close()
                q.cancel_join_thread()
            inflight = supervisor.on_death(worker_id, reason)
            if inflight is not None:
                eid, _attempt = inflight
                if eid not in done and eid not in quarantined:
                    state = states[eid]
                    state.kills += 1
                    schedule_retry(state, reason)

        def commit(eid: int, envelope: dict[str, Any]) -> None:
            done[eid] = envelope
            if self.store is not None:
                self.store.put(states[eid].spec, envelope)

        def handle_message(worker_id: int, msg: tuple[Any, ...]) -> None:
            kind = msg[0]
            supervisor.on_beat(worker_id)
            if kind == "beat":
                return
            if kind == "result":
                _, eid, attempt, envelope = msg
                if supervisor.inflight(worker_id) == (eid, attempt):
                    supervisor.on_complete(worker_id)
                if eid in done or eid in quarantined:
                    return  # late duplicate from a requeued attempt
                try:
                    unwrap_result(envelope)
                except CorruptResultError as exc:
                    supervisor.record(
                        "corrupt_result", str(exc),
                        episode_id=eid, worker_id=worker_id,
                    )
                    schedule_retry(states[eid], f"corrupt result: {exc}")
                    return
                commit(eid, envelope)
                return
            if kind == "error":
                _, eid, attempt, detail = msg
                if supervisor.inflight(worker_id) == (eid, attempt):
                    supervisor.on_complete(worker_id)
                if eid in done or eid in quarantined:
                    return
                supervisor.record(
                    "episode_error", detail, episode_id=eid, worker_id=worker_id
                )
                schedule_retry(states[eid], detail)

        for _ in range(min(cfg.num_workers, outstanding())):
            spawn_worker()

        try:
            while outstanding() > 0 and workers:
                # 1. Drain every worker's message channel.
                for worker_id in list(workers):
                    _proc, _task_q, msg_q = workers[worker_id]
                    while True:
                        try:
                            msg = msg_q.get_nowait()
                        except Exception:  # repro: allow-broad-except -- Empty ends the drain; a dead worker's broken channel is handled by liveness checks below
                            break
                        handle_message(worker_id, msg)

                # 2. Reap workers whose process died underneath us.
                for worker_id in list(workers):
                    proc = workers[worker_id][0]
                    if not proc.is_alive():
                        retire_worker(
                            worker_id,
                            f"worker process exited (code {proc.exitcode})",
                        )

                # 3. Kill workers that stopped beating (stall/livelock).
                for worker_id in supervisor.overdue():
                    if worker_id in workers:
                        retire_worker(worker_id, "heartbeat timeout")

                # 4. Refill the pool, unless the restart budget is spent.
                while (
                    len(workers) < min(cfg.num_workers, outstanding())
                    and supervisor.deaths <= cfg.max_worker_restarts
                    and outstanding() > 0
                ):
                    spawn_worker()
                if not workers and outstanding() > 0:
                    degraded = True
                    supervisor.record(
                        "degraded",
                        "worker restart budget exhausted; "
                        f"finishing {outstanding()} episodes serially",
                    )
                    break

                # 5. Hand ready episodes to idle workers.
                idle = deque(
                    w for w in supervisor.idle_workers() if w in workers
                )
                now = self._clock()
                while idle and ready and ready[0][0] <= now:
                    _ready_at, eid = heapq.heappop(ready)
                    if eid in done or eid in quarantined:
                        continue
                    worker_id = idle.popleft()
                    state = states[eid]
                    attempt = state.attempts
                    state.attempts += 1
                    supervisor.on_assign(worker_id, eid, attempt)
                    workers[worker_id][1].put((state.spec, attempt))

                time.sleep(cfg.poll_interval_s)
        finally:
            for worker_id in list(workers):
                proc, task_q, msg_q = workers.pop(worker_id)
                try:
                    task_q.put(None)
                except Exception:  # repro: allow-broad-except -- a broken channel just means the worker is already gone
                    pass
                proc.join(cfg.join_timeout_s)
                if proc.is_alive():
                    proc.kill()
                    proc.join(cfg.join_timeout_s)
                for q in (task_q, msg_q):
                    q.close()
                    q.cancel_join_thread()

        # Graceful degradation: finish the remainder in-process, without
        # fault injection (the faults model *worker* failures, and there
        # are no workers left to fail).
        if outstanding() > 0:
            for spec in specs:
                eid = spec.episode_id
                if eid in done or eid in quarantined:
                    continue
                payload = self.task.run_episode(context, spec, lambda: None)
                commit(eid, wrap_result(spec, payload))

        merged = merge_results(
            unwrap_result(done[eid]) for eid in sorted(done)
        )
        return RolloutReport(
            merged=merged,
            total=len(specs),
            completed=len(done),
            from_store=from_store,
            quarantined=tuple(
                quarantined[eid] for eid in sorted(quarantined)
            ),
            quarantined_ids=tuple(sorted(quarantined)),
            poison_dropped=poison_dropped,
            incidents=supervisor.incidents,
            incidents_dropped=supervisor.incidents_dropped,
            worker_deaths=supervisor.deaths,
            workers_spawned=workers_spawned,
            degraded=degraded,
            num_workers=cfg.num_workers,
        )


def _worker_entry(
    worker_id: int,
    task: "RolloutTask",
    context: Any,
    task_queue: Any,
    msg_queue: Any,
    injector: "WorkerFaultInjector | None",
    beat_interval_s: float,
    parent_pid: int,
) -> None:
    # Imported here so the module namespace forked into the child stays
    # minimal; the worker loop lives in its own module for testability.
    from repro.rollouts.workers import worker_main

    worker_main(
        worker_id,
        task,
        context,
        task_queue,
        msg_queue,
        injector,
        beat_interval_s,
        parent_pid,
    )


def run_rollouts_serial(
    task: "RolloutTask",
    specs: Iterable[EpisodeSpec],
    store: "RolloutStore | None" = None,
) -> RolloutReport:
    """The serial seed path: same episodes, same merge, one process.

    This is the reference every parallel run must match bit-for-bit; it
    shares the store format with the executor, so a campaign can even be
    started parallel and finished serial (or vice versa) without losing
    work.
    """
    specs = list(specs)
    _validate_specs(specs)
    context = task.build_context()
    done: dict[int, Any] = {}
    from_store = 0
    for spec in sorted(specs, key=lambda s: s.episode_id):
        envelope = store.get(spec) if store is not None else None
        if envelope is not None:
            from_store += 1
        else:
            payload = task.run_episode(context, spec, lambda: None)
            envelope = wrap_result(spec, payload)
            if store is not None:
                store.put(spec, envelope)
        done[spec.episode_id] = envelope
    merged = merge_results(unwrap_result(done[eid]) for eid in sorted(done))
    return RolloutReport(
        merged=merged,
        total=len(specs),
        completed=len(done),
        from_store=from_store,
        quarantined=(),
        quarantined_ids=(),
        poison_dropped=0,
        incidents=(),
        incidents_dropped=0,
        worker_deaths=0,
        workers_spawned=0,
        degraded=False,
        num_workers=1,
    )

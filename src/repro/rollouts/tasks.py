"""Rollout task definitions: what one episode *is*.

A :class:`RolloutTask` turns an :class:`~repro.rollouts.spec.EpisodeSpec`
into a JSON payload, calling ``beat()`` periodically so the supervisor
can tell a slow episode from a dead worker.  The contract every task
must honour:

* the payload is a **pure function of the spec** — no worker identity,
  no wall clock, no cross-episode state (that is what makes retries and
  completion-order scrambling invisible to the merge, and what REP403
  enforces statically);
* the payload is plain JSON (lists/dicts/str/int/float/bool) so it can
  checksum, travel queues, and persist through the rollout store
  unchanged.

Three tasks ship: a :class:`SyntheticTask` for tests and smoke drills, an
:class:`EvalRolloutTask` running real dispatch simulations, and a
:class:`TrainingCollectTask` collecting DQN transitions for the shared
replay buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.rollouts.spec import EpisodeSpec, episode_rng, episode_sim_seed

#: The heartbeat callback handed to ``run_episode``.
Beat = Callable[[], None]


@runtime_checkable
class RolloutTask(Protocol):
    """One episode family the executor knows how to run."""

    @property
    def name(self) -> str: ...

    @property
    def kind(self) -> str: ...

    def build_context(self) -> Any:
        """Heavy shared state, built once in the coordinator.

        Workers inherit the context copy-on-write through ``fork``; it is
        never pickled or sent over a queue.
        """
        ...

    def run_episode(
        self, context: Any, spec: EpisodeSpec, beat: Beat
    ) -> dict[str, Any]:
        """Run one episode; call ``beat()`` at least once per work slice."""
        ...


# -- synthetic -----------------------------------------------------------------


@dataclass(frozen=True)
class SyntheticTask:
    """A cheap, deterministic stand-in episode for tests and smoke drills.

    Each episode runs ``steps`` slices of small matrix work (so episodes
    take real, tunable time) and emits summary statistics plus a short
    transition list — enough surface to exercise merge, store, chaos and
    kill-resume paths without building a city.
    """

    steps: int = 5
    state_dim: int = 4
    work_size: int = 0

    @property
    def name(self) -> str:
        return "synthetic"

    @property
    def kind(self) -> str:
        return "synthetic"

    def build_context(self) -> Any:
        return None

    def run_episode(
        self, context: Any, spec: EpisodeSpec, beat: Beat
    ) -> dict[str, Any]:
        rng = episode_rng(spec)
        total = 0.0
        transitions: list[list[Any]] = []
        state = [float(x) for x in rng.random(self.state_dim)]
        for step in range(self.steps):
            beat()
            if self.work_size > 0:
                # Busy work to stretch episode duration for timing tests;
                # its result folds into the payload so it cannot be elided.
                m = rng.random((self.work_size, self.work_size))
                total += float(np.linalg.norm(m @ m))
            else:
                total += float(rng.random())
            next_state = [float(x) for x in rng.random(self.state_dim)]
            transitions.append(
                [
                    state,
                    int(rng.integers(0, 4)),
                    float(rng.random()),
                    next_state,
                    bool(step == self.steps - 1),
                ]
            )
            state = next_state
        return {
            "steps": self.steps,
            "total": total,
            "transitions": transitions,
        }


# -- evaluation ----------------------------------------------------------------


@dataclass(frozen=True)
class EvalRolloutTask:
    """Dispatch-simulation episodes over one fixed scenario window.

    Every episode simulates the same request set under a different
    derived simulation seed (team placement etc.), the unit the eval
    harnesses fan out.  The worker beats once per dispatch cycle through
    the engine's ``on_cycle`` hook, so a mid-episode death is detected
    within one cycle.
    """

    scenario: Any
    requests: tuple[Any, ...]
    t0_s: float
    t1_s: float
    num_teams: int = 10

    @property
    def name(self) -> str:
        return "eval"

    @property
    def kind(self) -> str:
        return "eval"

    def build_context(self) -> Any:
        return None

    def run_episode(
        self, context: Any, spec: EpisodeSpec, beat: Beat
    ) -> dict[str, Any]:
        from repro.dispatch.nearest import NearestDispatcher
        from repro.sim.engine import SimulationConfig
        from repro.sim.kernel import build_simulator
        from repro.sim.metrics import SimulationMetrics

        sim_seed = episode_sim_seed(spec)
        config = SimulationConfig(
            t0_s=self.t0_s,
            t1_s=self.t1_s,
            num_teams=self.num_teams,
            seed=sim_seed,
        )
        sim = build_simulator(
            self.scenario,
            list(self.requests),
            NearestDispatcher(),
            config,
            on_cycle=lambda i, t, ran: beat(),
        )
        result = sim.run()
        metrics = SimulationMetrics(result)
        delays = metrics.driving_delays()
        timeliness = metrics.timeliness_values()
        return {
            "sim_seed": sim_seed,
            "requests": len(self.requests),
            "served": len(result.pickups),
            "timely": metrics.total_timely_served,
            "delivered": metrics.delivered_count(),
            "service_rate": metrics.service_rate,
            "median_delay_s": float(np.median(delays)) if len(delays) else 0.0,
            "mean_timeliness_s": (
                float(np.mean(timeliness)) if len(timeliness) else 0.0
            ),
        }


# -- training collection -------------------------------------------------------


@dataclass(frozen=True)
class TrainingCollectTask:
    """Independent DQN experience-collection episodes.

    Serial online training threads one mutating agent through every
    episode, which no parallel schedule can reproduce bit-identically.
    The parallelizable unit is therefore the *collection episode*: each
    episode restores a fresh agent from the same pristine post-pretrain
    state, runs one exploration day, and ships the transitions it
    gathered.  Merging feeds the shared replay in episode-id order, so
    the merged buffer is identical however episodes were scheduled — the
    serial reference is this same collect-then-merge loop run in-process
    (see :func:`repro.rollouts.executor.run_rollouts_serial`).
    """

    scenario: Any
    bundle: Any
    config: Any
    agent_state: dict[str, np.ndarray]
    num_teams: int = 40
    team_capacity: int = 5

    @property
    def name(self) -> str:
        return "train-collect"

    @property
    def kind(self) -> str:
        return "train"

    def build_context(self) -> Any:
        """Stage-1 products: matched traces, fitted predictor, feed."""
        from repro.core.positions import PopulationFeed
        from repro.core.predictor import RequestPredictor, build_training_set
        from repro.core.training import _deployment_pipeline, _flooded_days

        cfg = self.config
        matched = _deployment_pipeline(self.scenario, self.bundle)
        training_set = build_training_set(
            self.scenario,
            self.bundle,
            matched=matched,
            negatives_per_positive=cfg.negatives_per_positive,
            seed=cfg.seed,
        )
        predictor = RequestPredictor(
            self.scenario,
            kernel=cfg.svm_kernel,
            c=cfg.svm_c,
            gamma=cfg.svm_gamma,
            seed=cfg.seed,
        ).fit(training_set)
        return {
            "predictor": predictor,
            "feed": PopulationFeed(matched),
            "flooded_days": _flooded_days(self.bundle),
        }

    def run_episode(
        self, context: Any, spec: EpisodeSpec, beat: Beat
    ) -> dict[str, Any]:
        from collections import defaultdict

        from repro.core.rl_dispatcher import MobiRescueDispatcher, make_agent
        from repro.rollouts.merge import drain_transitions
        from repro.sim.engine import SimulationConfig
        from repro.sim.kernel import build_simulator
        from repro.sim.requests import remap_to_operable, requests_from_rescues
        from repro.weather.storms import SECONDS_PER_DAY

        cfg = self.config
        flooded_days = context["flooded_days"]
        day = flooded_days[spec.episode_id % len(flooded_days)]
        t0, t1 = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
        requests = remap_to_operable(
            requests_from_rescues(self.bundle.rescues, t0, t1),
            self.scenario.network,
            self.scenario.flood,
        )
        # Fresh agent from the pristine shared state: episode results
        # depend only on the spec, never on sibling episodes.
        agent = make_agent(cfg)
        agent.set_state(self.agent_state)
        if not requests:
            return {"day": day, "requests": 0, "service_rate": 0.0,
                    "transitions": []}
        # The numeric-health sentinel screens every learn step; it only
        # ever *reads* agent state, so collection is bit-identical with
        # or without it.  The serial reference runs this same task, so
        # both sides raise (and quarantine) identically.
        from repro.training.health import SentinelConfig, TrainingSentinel

        sentinel = TrainingSentinel(SentinelConfig())
        sentinel.begin_attempt(spec.episode_id, 0)
        agent.observer = sentinel.observe
        dispatcher = MobiRescueDispatcher(
            self.scenario, context["predictor"], context["feed"], agent, cfg,
            training=True,
        )
        sim = build_simulator(
            self.scenario,
            requests,
            dispatcher,
            SimulationConfig(
                t0_s=t0,
                t1_s=t1,
                num_teams=self.num_teams,
                team_capacity=self.team_capacity,
                seed=episode_sim_seed(spec),
            ),
            on_cycle=lambda i, t, ran: beat(),
        )
        result = sim.run()
        final_pickups: dict[int, int] = defaultdict(int)
        for p in result.pickups:
            final_pickups[p.team_id] += 1
        dispatcher.finish_episode(dict(final_pickups))
        agent.observer = None
        sentinel.screen_params(agent)
        sentinel.screen_replay(agent.buffer)
        anomalies = sentinel.drain()
        if anomalies:
            from repro.training.health import TrainingAnomalyError

            raise TrainingAnomalyError(anomalies)
        return {
            "day": day,
            "requests": len(requests),
            "served": len(result.pickups),
            "service_rate": len(result.pickups) / len(requests),
            "transitions": drain_transitions(agent.buffer),
        }


def build_training_collect_task(
    scenario: Any,
    bundle: Any,
    config: Any = None,
    num_teams: int = 40,
    team_capacity: int = 5,
) -> TrainingCollectTask:
    """Prepare a collection task: pretrain once, freeze the pristine state.

    Mirrors the head of :func:`repro.core.training.train_mobirescue`
    exactly (pretrain, then drop epsilon to 0.3) so collected experience
    matches what episode 0 of serial training would see.
    """
    from repro.core.config import MobiRescueConfig
    from repro.core.rl_dispatcher import make_agent
    from repro.core.training import pretrain_agent

    cfg = config or MobiRescueConfig()
    agent = make_agent(cfg)
    pretrain_agent(agent, cfg)
    agent.epsilon = 0.3
    return TrainingCollectTask(
        scenario=scenario,
        bundle=bundle,
        config=cfg,
        agent_state=agent.get_state(),
        num_teams=num_teams,
        team_capacity=team_capacity,
    )

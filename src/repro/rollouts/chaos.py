"""Worker-chaos harness: kill real rollout workers, prove the invariants.

Per seed, the harness runs one parallel campaign of real dispatch
simulations under a ``worker-*`` fault profile — actual process deaths
mid-episode, heartbeat-starving stalls, checksum-breaking corruptions —
and judges the outcome against explicit invariants rather than vibes:

* **zero lost episodes** — every episode is merged or quarantined;
* **equivalence** — the merged output over non-quarantined episodes is
  bit-identical to the serial seed path (same fingerprint);
* **quarantine accounting** — every quarantined episode has a full
  incident record, and under ``worker-kill`` the quarantined set equals
  the injector's poison set exactly (no over- or under-quarantine);
* **chaos bit** — when the profile schedules kills, workers really died
  (a chaos run that didn't hurt proves nothing).

The CLI (``repro chaos --profile worker-*``) turns violations into a
nonzero exit so CI can gate on them.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.artifacts import atomic_write_json
from repro.data import DatasetSpec, build_dataset
from repro.faults.models import WorkerFaultInjector
from repro.faults.profiles import get_worker_profile
from repro.rollouts.executor import (
    RolloutConfig,
    RolloutExecutor,
    RolloutReport,
    run_rollouts_serial,
)
from repro.rollouts.spec import EpisodeSpec
from repro.rollouts.tasks import EvalRolloutTask
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index

logger = logging.getLogger("repro.rollouts.chaos")


@dataclass(frozen=True)
class RolloutChaosConfig:
    """One worker-chaos campaign: profile, seeds, world size, topology."""

    profile: str = "worker-kill"
    seeds: tuple[int, ...] = (0, 1)
    episodes: int = 8
    num_workers: int = 2
    population_size: int = 250
    num_teams: int = 10
    window_days: float = 0.25
    eval_day: str = "Sep 16"
    #: Seed of the episode specs (the campaign identity); the per-run
    #: chaos seed drives only the fault injector.
    campaign_seed: int = 7
    heartbeat_timeout_s: float = 3.0
    beat_interval_s: float = 0.05
    max_worker_restarts: int = 64

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.episodes < 1:
            raise ValueError("episodes must be positive")
        if self.num_workers < 1:
            raise ValueError("num_workers must be positive")
        if self.window_days <= 0:
            raise ValueError("evaluation window must be positive")


@dataclass
class RolloutSeedVerdict:
    """Invariant outcomes for one seed's serial/chaos pair."""

    seed: int
    zero_lost_ok: bool
    equivalence_ok: bool
    quarantine_ok: bool
    chaos_bit_ok: bool
    worker_deaths: int
    quarantined_ids: list[int]
    expected_poison: list[int]
    violations: list[str]
    chaos_summary: dict[str, Any]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_json(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "zero_lost_ok": self.zero_lost_ok,
            "equivalence_ok": self.equivalence_ok,
            "quarantine_ok": self.quarantine_ok,
            "chaos_bit_ok": self.chaos_bit_ok,
            "worker_deaths": self.worker_deaths,
            "quarantined_ids": self.quarantined_ids,
            "expected_poison": self.expected_poison,
            "violations": list(self.violations),
            "chaos": self.chaos_summary,
        }


def _expects_kills(
    injector: WorkerFaultInjector, episode_ids: list[int], budget: int
) -> bool:
    """Does the schedule contain at least one kill-causing fault?"""
    for eid in episode_ids:
        for attempt in range(budget):
            plan = injector.plan(eid, attempt)
            if plan.crash_after_beats is not None or plan.stall_s > 0.0:
                return True
    return False


class RolloutChaosHarness:
    """Build one small eval world once, then run seeded chaos campaigns."""

    def __init__(self, config: RolloutChaosConfig | None = None) -> None:
        self.config = config or RolloutChaosConfig()
        cfg = self.config
        self.scenario, bundle = build_dataset(
            DatasetSpec(storm="florence", population_size=cfg.population_size)
        )
        day = day_index(self.scenario.timeline, cfg.eval_day)
        t0_s = day * SECONDS_PER_DAY
        t1_s = (day + cfg.window_days) * SECONDS_PER_DAY
        requests = remap_to_operable(
            requests_from_rescues(bundle.rescues, t0_s, t1_s),
            self.scenario.network,
            self.scenario.flood,
        )
        self.task = EvalRolloutTask(
            scenario=self.scenario,
            requests=tuple(requests),
            t0_s=t0_s,
            t1_s=t1_s,
            num_teams=cfg.num_teams,
        )
        self.specs = [
            EpisodeSpec(i, self.task.kind, seed=cfg.campaign_seed)
            for i in range(cfg.episodes)
        ]
        # The serial reference depends only on the campaign, not on the
        # chaos seed: compute it once for every seed's judgment.
        self.serial = run_rollouts_serial(self.task, self.specs)

    def _executor_config(self) -> RolloutConfig:
        cfg = self.config
        return RolloutConfig(
            num_workers=cfg.num_workers,
            heartbeat_timeout_s=cfg.heartbeat_timeout_s,
            beat_interval_s=cfg.beat_interval_s,
            max_worker_restarts=cfg.max_worker_restarts,
        )

    def _judge(self, seed: int) -> RolloutSeedVerdict:
        cfg = self.config
        injector = WorkerFaultInjector(get_worker_profile(cfg.profile), seed=seed)
        episode_ids = [s.episode_id for s in self.specs]
        expected_poison = sorted(
            eid for eid in episode_ids if injector.poisoned(eid)
        )
        executor = RolloutExecutor(
            self.task,
            self._executor_config(),
            seed=cfg.campaign_seed,
            fault_injector=injector,
        )
        report = executor.run(self.specs)
        violations: list[str] = []

        zero_lost_ok = report.zero_lost
        if not zero_lost_ok:
            lost = report.total - report.completed - len(report.quarantined_ids)
            violations.append(f"seed {seed}: {lost} episodes lost")

        reference = self.serial.merged.restrict(
            eid for eid in episode_ids if eid not in report.quarantined_ids
        )
        equivalence_ok = (
            reference.fingerprint() == report.merged.fingerprint()
        )
        if not equivalence_ok:
            violations.append(
                f"seed {seed}: merged output diverges from the serial path"
            )

        recorded = {
            i.episode_id
            for i in report.incidents
            if i.kind == "quarantine" and i.episode_id is not None
        }
        quarantine_ok = set(report.quarantined_ids) <= recorded
        if not quarantine_ok:
            missing = sorted(set(report.quarantined_ids) - recorded)
            violations.append(
                f"seed {seed}: quarantined episodes {missing} lack incident records"
            )
        if cfg.profile == "worker-kill":
            if list(report.quarantined_ids) != expected_poison:
                quarantine_ok = False
                violations.append(
                    f"seed {seed}: quarantined {list(report.quarantined_ids)} "
                    f"!= injected poison set {expected_poison}"
                )

        budget = self._executor_config().retry.max_attempts
        chaos_bit_ok = True
        if _expects_kills(injector, episode_ids, budget):
            chaos_bit_ok = report.worker_deaths > 0
            if not chaos_bit_ok:
                violations.append(
                    f"seed {seed}: kills were scheduled but no worker died"
                )

        return RolloutSeedVerdict(
            seed=seed,
            zero_lost_ok=zero_lost_ok,
            equivalence_ok=equivalence_ok,
            quarantine_ok=quarantine_ok,
            chaos_bit_ok=chaos_bit_ok,
            worker_deaths=report.worker_deaths,
            quarantined_ids=list(report.quarantined_ids),
            expected_poison=expected_poison,
            violations=violations,
            chaos_summary=report.summary(),
        )

    def run(
        self, progress: Callable[[str], None] | None = None
    ) -> dict[str, Any]:
        cfg = self.config
        say = progress or (lambda msg: None)
        say(
            f"worker chaos: profile={cfg.profile} episodes={cfg.episodes} "
            f"workers={cfg.num_workers} serial fingerprint "
            f"{self.serial.merged.fingerprint()[:12]}"
        )
        runs = []
        violations: list[str] = []
        for seed in cfg.seeds:
            verdict = self._judge(seed)
            runs.append(verdict)
            violations.extend(verdict.violations)
            say(
                f"seed {seed}: deaths={verdict.worker_deaths} "
                f"quarantined={verdict.quarantined_ids} "
                f"{'OK' if verdict.ok else 'VIOLATED'}"
            )
        return {
            "profile": cfg.profile,
            "seeds": list(cfg.seeds),
            "episodes": cfg.episodes,
            "num_workers": cfg.num_workers,
            "serial_fingerprint": self.serial.merged.fingerprint(),
            "ok": not violations,
            "violations": violations,
            "runs": [v.as_json() for v in runs],
        }


def run_rollout_chaos(
    config: RolloutChaosConfig | None = None,
    out_path: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run a worker-chaos campaign, optionally writing the JSON report."""
    harness = RolloutChaosHarness(config)
    report = harness.run(progress=progress)
    if out_path:
        atomic_write_json(out_path, report)
    return report

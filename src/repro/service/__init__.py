"""Resilient online dispatch service.

The production-shaped shell around the simulation engine: validated
ingest with quarantine and backpressure (:mod:`repro.service.ingest`),
circuit breakers with degraded fallbacks for the predictor and the RL
policy (:mod:`repro.service.guards`, :mod:`repro.service.breaker`),
per-tick deadline slices on a deterministic clock
(:mod:`repro.service.deadline`), the service loop that wires it all
(:mod:`repro.service.loop`) and the chaos harness that proves both the
zero-fault bit-equivalence and the under-fault invariants
(:mod:`repro.service.chaos`).
"""

from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from repro.service.chaos import ChaosConfig, ChaosHarness, SeedVerdict, run_chaos
from repro.service.deadline import DeadlineBudget, ManualClock
from repro.service.guards import GuardedPredictor, ResilientDispatcher
from repro.service.ingest import (
    IngestGuard,
    ValidatedPositionFeed,
    make_record_corrupter,
)
from repro.service.loop import DispatchService, ServiceConfig, ServiceReport
from repro.service.records import (
    ALL_REASONS,
    GpsRecord,
    IngestSchema,
    QuarantinedRecord,
)

__all__ = [
    "ALL_REASONS",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "BreakerConfig",
    "BreakerTransition",
    "ChaosConfig",
    "ChaosHarness",
    "CircuitBreaker",
    "DeadlineBudget",
    "DispatchService",
    "GpsRecord",
    "GuardedPredictor",
    "IngestGuard",
    "IngestSchema",
    "ManualClock",
    "QuarantinedRecord",
    "ResilientDispatcher",
    "SeedVerdict",
    "ServiceConfig",
    "ServiceReport",
    "ValidatedPositionFeed",
    "make_record_corrupter",
    "run_chaos",
]

"""Resilient online dispatch service.

The production-shaped shell around the simulation engine: validated
ingest with quarantine and backpressure (:mod:`repro.service.ingest`),
circuit breakers with degraded fallbacks for the predictor and the RL
policy (:mod:`repro.service.guards`, :mod:`repro.service.breaker`),
per-tick deadline slices on a deterministic clock
(:mod:`repro.service.deadline`), the service loop that wires it all
(:mod:`repro.service.loop`) and the chaos harness that proves both the
zero-fault bit-equivalence and the under-fault invariants
(:mod:`repro.service.chaos`).

PR 6 adds the sharded topology (:mod:`repro.service.sharding`): the
ingest stream partitioned by keyspace across isolated shards, a
supervisor with heartbeat-driven failover and rebalance, shard-level
chaos, a million-user load generator, and the unified service-health
report (:mod:`repro.service.report`).
"""

from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from repro.service.chaos import ChaosConfig, ChaosHarness, SeedVerdict, run_chaos
from repro.service.deadline import DeadlineBudget, ManualClock
from repro.service.guards import GuardedPredictor, ResilientDispatcher
from repro.service.ingest import (
    IngestGuard,
    ValidatedPositionFeed,
    make_record_corrupter,
)
from repro.service.loop import DispatchService, ServiceConfig, ServiceReport
from repro.service.records import (
    ALL_REASONS,
    GpsRecord,
    IngestSchema,
    QuarantinedRecord,
)
from repro.service.report import (
    build_service_report,
    extract_service_report,
    format_service_report,
    write_service_report,
)
from repro.service.sharding import (
    GridKeyspace,
    LoadgenConfig,
    LoadGenerator,
    Shard,
    ShardAssignment,
    ShardChaosConfig,
    ShardChaosHarness,
    ShardedDispatchService,
    ShardedIngestGuard,
    ShardedServiceReport,
    ShardingConfig,
    ShardSupervisor,
    SupervisorConfig,
    run_loadgen,
    run_shard_chaos,
)

__all__ = [
    "ALL_REASONS",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "BreakerConfig",
    "BreakerTransition",
    "ChaosConfig",
    "ChaosHarness",
    "CircuitBreaker",
    "DeadlineBudget",
    "DispatchService",
    "GpsRecord",
    "GridKeyspace",
    "GuardedPredictor",
    "IngestGuard",
    "IngestSchema",
    "LoadGenerator",
    "LoadgenConfig",
    "ManualClock",
    "QuarantinedRecord",
    "ResilientDispatcher",
    "SeedVerdict",
    "ServiceConfig",
    "ServiceReport",
    "Shard",
    "ShardAssignment",
    "ShardChaosConfig",
    "ShardChaosHarness",
    "ShardSupervisor",
    "ShardedDispatchService",
    "ShardedIngestGuard",
    "ShardedServiceReport",
    "ShardingConfig",
    "SupervisorConfig",
    "ValidatedPositionFeed",
    "build_service_report",
    "extract_service_report",
    "format_service_report",
    "make_record_corrupter",
    "run_chaos",
    "run_loadgen",
    "run_shard_chaos",
    "write_service_report",
]

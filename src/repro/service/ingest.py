"""Ingest guard: validation, quarantine, and backpressure for the feed.

Every GPS record entering the service passes through
:class:`IngestGuard.submit`.  Invalid records are quarantined with a
reason code (:mod:`repro.service.records`); valid ones enter a *bounded*
queue — when ingest outpaces the tick, the oldest queued records are
shed deterministically (they are the stalest fixes, and a newer fix for
the same person supersedes them anyway).  Nothing here ever raises on
bad data: corruption is an expected input, not an exceptional one.

:class:`ValidatedPositionFeed` adapts the guard to the engine's
``PositionFeed`` protocol: the inner feed's per-tick snapshot is turned
into records, routed through the guard, and only validated records
rebuild the snapshot the predictor sees.  With well-formed input the
rebuilt snapshot equals the inner one — the feed is bit-transparent on
the clean path.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from collections.abc import Callable, Iterable
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.core.positions import PositionFeed
from repro.roadnet.graph import RoadNetwork
from repro.service.records import GpsRecord, IngestSchema, QuarantinedRecord

if TYPE_CHECKING:
    from repro.faults.models import ComponentFaultInjector

#: Chaos hook: rewrites a tick's record batch (corrupt-record storms).
RecordCorrupter = Callable[[list[GpsRecord], float], list[GpsRecord]]


class IngestGuard:
    """Schema validation + quarantine + bounded-queue backpressure."""

    def __init__(
        self,
        schema: IngestSchema,
        max_queue: int = 50_000,
        max_quarantine: int = 2_000,
        max_tracked_persons: int = 100_000,
    ) -> None:
        if max_queue < 1:
            raise ValueError("ingest queue needs capacity for at least one record")
        if max_quarantine < 1:
            raise ValueError("quarantine needs capacity for at least one record")
        if max_tracked_persons < 1:
            raise ValueError("per-person tracking needs capacity for at least one person")
        self.schema = schema
        self.max_queue = max_queue
        self.max_tracked_persons = max_tracked_persons
        self._queue: deque[GpsRecord] = deque()
        #: Most recent rejects, for the run report; bounded ring.
        self.quarantined: deque[QuarantinedRecord] = deque(maxlen=max_quarantine)
        self.quarantine_dropped = 0
        #: Newest accepted timestamp per person (ordering judged per person).
        #: Bounded LRU: a multi-day replay over millions of users must not
        #: grow validator memory without limit, so the least-recently-seen
        #: person's ordering/duplicate state is evicted deterministically
        #: once ``max_tracked_persons`` is reached (an evicted person is
        #: simply judged as new again on their next fix).
        self._last_t: OrderedDict[int, float] = OrderedDict()
        self.tracked_evictions = 0
        self.accepted = 0
        self.shed = 0
        self.drained = 0
        self.rejected_by_reason: dict[str, int] = {}

    def quarantine(self, record: GpsRecord, reason: str, detail: str) -> None:
        """File one invalid record under its reason code."""
        self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
        ring = self.quarantined
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.quarantine_dropped += 1
        ring.append(QuarantinedRecord(record=record, reason=reason, detail=detail))

    def submit(self, record: GpsRecord, now_s: float) -> bool:
        """Validate one record; queue it or quarantine it.

        Returns True when the record was accepted.  When the queue is
        full the *oldest* queued record is shed first — deterministic
        backpressure in favour of fresh data.
        """
        verdict = self.schema.validate(
            record, now_s, self._last_t.get(record.person_id)
        )
        if verdict is not None:
            reason, detail = verdict
            self.quarantine(record, reason, detail)
            return False
        self._last_t[record.person_id] = record.t_s
        self._last_t.move_to_end(record.person_id)
        if len(self._last_t) > self.max_tracked_persons:
            self._last_t.popitem(last=False)
            self.tracked_evictions += 1
        if len(self._queue) >= self.max_queue:
            self._queue.popleft()
            self.shed += 1
        self._queue.append(record)
        self.accepted += 1
        return True

    def shed_to(self, capacity: int) -> int:
        """Shed oldest-first down to ``capacity`` queued records.

        The sharding layer uses this to enforce a *temporarily* reduced
        capacity (hot-shard skew) without rebuilding the guard; returns
        the number of records shed.
        """
        dropped = 0
        while len(self._queue) > max(0, capacity):
            self._queue.popleft()
            self.shed += 1
            dropped += 1
        return dropped

    def requeue(self, records: Iterable[GpsRecord]) -> int:
        """Re-enqueue already-validated records (shard failover transfer).

        The records were accepted (and counted) by another guard, so they
        are *not* re-validated and do not increment ``accepted`` here;
        capacity is still enforced oldest-first.  Returns the number of
        records taken in.
        """
        taken = 0
        for record in records:
            if len(self._queue) >= self.max_queue:
                self._queue.popleft()
                self.shed += 1
            self._queue.append(record)
            taken += 1
        return taken

    def take_queue(self) -> list[GpsRecord]:
        """Remove every queued record *without* counting a drain.

        Failover paths use this: a transferred (or process-death-lost)
        record was never delivered to a snapshot, so it must not inflate
        ``drained`` — the caller accounts for it as transferred or lost.
        """
        out = list(self._queue)
        self._queue.clear()
        return out

    def drain(self) -> list[GpsRecord]:
        """Consume every queued record, oldest first."""
        out = list(self._queue)
        self._queue.clear()
        self.drained += len(out)
        return out

    def snapshot(self, now_s: float | None = None) -> dict[int, int]:
        """Drain the queue into a position snapshot ``{person: landmark}``.

        Later records win per person; per-person timestamps are monotone
        by construction (ordering violations were quarantined), so the
        last record is always the newest fix.  ``now_s`` is accepted for
        interface parity with the sharded guard (which needs it to stamp
        shard heartbeats) and is ignored here.
        """
        positions: dict[int, int] = {}
        for record in self.drain():
            positions[record.person_id] = record.node
        return positions

    @property
    def queued(self) -> int:
        return len(self._queue)

    @property
    def tracked_persons(self) -> int:
        return len(self._last_t)

    def stats(self) -> dict[str, object]:
        """JSON-ready counters for run reports."""
        return {
            "accepted": self.accepted,
            "shed": self.shed,
            "queued": self.queued,
            "drained": self.drained,
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
            "rejected_total": sum(self.rejected_by_reason.values()),
            "quarantine_kept": len(self.quarantined),
            "quarantine_dropped": self.quarantine_dropped,
            "tracked_persons": self.tracked_persons,
            "tracked_evictions": self.tracked_evictions,
        }


def make_record_corrupter(
    component_faults: "ComponentFaultInjector",
) -> RecordCorrupter:
    """Deterministic corrupt-record-storm hook for the chaos harness.

    On storm cycles (per the injector's ``corrupt_fraction``), a sampled
    subset of the tick's records is mangled into each invalid shape the
    schema must catch: NaN coordinates, future timestamps, backwards
    timestamps, negative person ids, off-the-map positions.  All draws
    come from the injector's per-cycle mutation substream, so the storm
    is a pure function of ``(seed, cycle)``.
    """

    def corrupt(records: list[GpsRecord], t_s: float) -> list[GpsRecord]:
        fraction = component_faults.corrupt_fraction(int(t_s))
        if fraction <= 0.0 or not records:
            return records
        rng = component_faults.mutation_rng(int(t_s))
        count = min(len(records), max(1, int(round(fraction * len(records)))))
        chosen = set(
            int(i) for i in rng.choice(len(records), size=count, replace=False)
        )
        out: list[GpsRecord] = []
        for i, record in enumerate(records):
            if i not in chosen:
                out.append(record)
                continue
            mode = int(rng.integers(5))
            if mode == 0:
                out.append(replace(record, x=float("nan")))
            elif mode == 1:
                out.append(replace(record, t_s=record.t_s + 86_400.0))
            elif mode == 2:
                out.append(replace(record, t_s=record.t_s - 700.0))
            elif mode == 3:
                out.append(replace(record, person_id=-record.person_id - 1))
            else:
                out.append(replace(record, x=record.x + 1e7))
        return out

    return corrupt


class ValidatedPositionFeed:
    """A ``PositionFeed`` whose every fix passed the ingest guard.

    The inner feed's snapshot is expanded into one :class:`GpsRecord`
    per person (coordinates from the matched landmark, exactly what the
    upstream matcher produced) and submitted through ``guard``.  An
    optional ``corrupter`` lets the chaos harness mangle the batch
    before validation; whatever survives the guard rebuilds the
    snapshot.  Per-tick results are cached so repeated queries at the
    same timestamp neither double-submit records nor trip the duplicate
    detector.
    """

    def __init__(
        self,
        inner: PositionFeed,
        guard: IngestGuard,
        network: RoadNetwork,
        clock: Callable[[], float] | None = None,
        deadline_slice_s: float | None = None,
        incident_sink: Callable[[str, str, float], None] | None = None,
        corrupter: RecordCorrupter | None = None,
    ) -> None:
        self.inner = inner
        self.guard = guard
        self.network = network
        self._clock = clock
        self.deadline_slice_s = deadline_slice_s
        self._incident_sink = incident_sink
        self.corrupter = corrupter
        self.deadline_overruns = 0
        self._cache: tuple[float, dict[int, int]] | None = None

    def habitual_node(self, pid: int, t_seconds: float) -> int | None:
        """Delegate so stacked wrappers keep the historical fallback path."""
        inner_habitual = getattr(self.inner, "habitual_node", None)
        if inner_habitual is None:
            return None
        return inner_habitual(pid, t_seconds)

    def _records_for(self, t_s: float) -> list[GpsRecord]:
        base = self.inner(t_s)
        records: list[GpsRecord] = []
        for pid, node in sorted(base.items()):
            x, y = self.network.landmark(node).xy
            records.append(
                GpsRecord(person_id=pid, t_s=t_s, x=float(x), y=float(y), node=node)
            )
        return records

    def __call__(self, t_s: float) -> dict[int, int]:
        if self._cache is not None and self._cache[0] == t_s:
            return self._cache[1]
        start = self._clock() if self._clock is not None else None
        records = self._records_for(t_s)
        if self.corrupter is not None:
            records = self.corrupter(records, t_s)
        for record in records:
            self.guard.submit(record, now_s=t_s)
        positions = self.guard.snapshot(t_s)
        if start is not None and self._clock is not None:
            elapsed = self._clock() - start
            if (
                self.deadline_slice_s is not None
                and elapsed > self.deadline_slice_s
            ):
                self.deadline_overruns += 1
                if self._incident_sink is not None:
                    self._incident_sink(
                        "ingest_deadline",
                        f"ingest stage took {elapsed:.3f}s "
                        f"(> {self.deadline_slice_s:.3f}s slice)",
                        t_s,
                    )
        self._cache = (t_s, positions)
        return positions

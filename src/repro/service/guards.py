"""Breaker-guarded wrappers for the predictor and the policy.

Both wrappers share one contract: **on the clean path they are
transparent** — the inner component is called exactly once, its result
is returned unchanged, and no random state is consumed — so a guarded
run with zero faults is bit-identical to an unguarded one.  Only when
the component raises, overruns its deadline slice, or its breaker is
open does behaviour diverge, and then every divergence is recorded as an
incident:

* :class:`GuardedPredictor` falls back to the **last-known-good** ``ñ_e``
  (yesterday's demand map beats no demand map; the paper's prediction is
  slowly-varying over cycles).
* :class:`ResilientDispatcher` falls back to the
  :class:`~repro.dispatch.nearest.NearestDispatcher` heuristic — a broken
  learned policy degrades MobiRescue toward the paper's baselines
  instead of stalling rescues.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.predictor import RequestPredictor
from repro.dispatch.base import DispatchObservation, Dispatcher, TeamCommand
from repro.dispatch.nearest import NearestDispatcher
from repro.faults.models import InjectedPredictorFault
from repro.service.breaker import CircuitBreaker

#: ``(kind, detail, t_s)`` observer for service incidents.
IncidentSink = Callable[[str, str, float], None]


class GuardedPredictor:
    """Circuit-breaker wrapper satisfying the predictor's inference API.

    Stands in for :class:`~repro.core.predictor.RequestPredictor` inside
    :class:`~repro.core.rl_dispatcher.MobiRescueDispatcher`: only
    ``predict_request_distribution`` and ``is_fitted`` are consumed
    there.  Failures and deadline-slice overruns feed the breaker; while
    the breaker is open the last-known-good distribution is served
    without touching the inner model.
    """

    def __init__(
        self,
        inner: RequestPredictor,
        breaker: CircuitBreaker,
        clock: Callable[[], float],
        deadline_slice_s: float | None = None,
        incident_sink: IncidentSink | None = None,
        fault_hook: Callable[[float], bool] | None = None,
    ) -> None:
        self.inner = inner
        self.breaker = breaker
        self._clock = clock
        self.deadline_slice_s = deadline_slice_s
        self._incident_sink = incident_sink
        #: Chaos hook: ``fault_hook(t_s)`` True forces an injected failure.
        self.fault_hook = fault_hook
        #: Last ``ñ_e`` that was produced inside the deadline.
        self.last_good: dict[int, int] = {}
        self.fallback_serves = 0

    @property
    def is_fitted(self) -> bool:
        return self.inner.is_fitted

    def _record_incident(self, kind: str, detail: str, t_s: float) -> None:
        if self._incident_sink is not None:
            self._incident_sink(kind, detail, t_s)

    def _fallback(self, t_s: float, kind: str, detail: str) -> dict[int, int]:
        self.fallback_serves += 1
        self._record_incident(kind, detail, t_s)
        return dict(self.last_good)

    def predict_request_distribution(
        self, person_nodes: dict[int, int], t_s: float
    ) -> dict[int, int]:
        if not self.breaker.allow(t_s):
            return self._fallback(
                t_s,
                "predictor_breaker_open",
                "predictor breaker open; serving last-known-good ñ_e",
            )
        start = self._clock()
        try:
            if self.fault_hook is not None and self.fault_hook(t_s):
                raise InjectedPredictorFault("injected prediction-stage failure")
            result = self.inner.predict_request_distribution(person_nodes, t_s)
        except Exception as exc:  # repro: allow-broad-except -- breaker boundary
            self.breaker.record_failure(t_s, f"{type(exc).__name__}: {exc}")
            return self._fallback(
                t_s,
                "predictor_failure",
                f"predictor raised {type(exc).__name__}: {exc}; "
                "serving last-known-good ñ_e",
            )
        elapsed = self._clock() - start
        if self.deadline_slice_s is not None and elapsed > self.deadline_slice_s:
            self.breaker.record_failure(
                t_s, f"deadline overrun ({elapsed:.3f}s > {self.deadline_slice_s:.3f}s)"
            )
            return self._fallback(
                t_s,
                "predictor_deadline",
                f"predict stage took {elapsed:.3f}s "
                f"(> {self.deadline_slice_s:.3f}s slice); "
                "serving last-known-good ñ_e",
            )
        self.breaker.record_success(t_s)
        self.last_good = dict(result)
        return result


class ResilientDispatcher(Dispatcher):
    """Policy circuit breaker with a nearest-team heuristic fallback.

    Wraps any dispatcher (normally the MobiRescue RL policy).  Exceptions
    and deadline-slice overruns — including chaos-injected latency
    spikes, which *advance the injected clock* rather than sleeping —
    count as breaker failures; the cycle is then served by the fallback
    heuristic so no tick ever goes uncommanded for lack of a policy.
    """

    def __init__(
        self,
        inner: Dispatcher,
        breaker: CircuitBreaker,
        clock: Callable[[], float],
        deadline_slice_s: float | None = None,
        incident_sink: IncidentSink | None = None,
        fallback: Dispatcher | None = None,
        latency_hook: Callable[[float], float] | None = None,
    ) -> None:
        self.inner = inner
        self.breaker = breaker
        self._clock = clock
        self.deadline_slice_s = deadline_slice_s
        self._incident_sink = incident_sink
        self.fallback = fallback if fallback is not None else NearestDispatcher()
        #: Chaos hook: ``latency_hook(t_s)`` seconds of injected stall.
        self.latency_hook = latency_hook
        self.fallback_cycles = 0
        self.name = inner.name
        self.flood_aware = inner.flood_aware
        self.computation_delay_s = inner.computation_delay_s

    def _record_incident(self, kind: str, detail: str, t_s: float) -> None:
        if self._incident_sink is not None:
            self._incident_sink(kind, detail, t_s)

    def _serve_fallback(
        self, obs: DispatchObservation, kind: str, detail: str
    ) -> dict[int, TeamCommand]:
        self.fallback_cycles += 1
        self._record_incident(kind, detail, obs.t_s)
        return self.fallback.dispatch(obs)

    def dispatch(self, obs: DispatchObservation) -> dict[int, TeamCommand]:
        t_s = obs.t_s
        if not self.breaker.allow(t_s):
            return self._serve_fallback(
                obs,
                "policy_breaker_open",
                f"policy breaker open; serving {self.fallback.name} heuristic",
            )
        start = self._clock()
        try:
            commands = self.inner.dispatch(obs)
        except Exception as exc:  # repro: allow-broad-except -- breaker boundary
            self.breaker.record_failure(t_s, f"{type(exc).__name__}: {exc}")
            return self._serve_fallback(
                obs,
                "policy_failure",
                f"policy raised {type(exc).__name__}: {exc}; "
                f"serving {self.fallback.name} heuristic",
            )
        elapsed = self._clock() - start
        if self.latency_hook is not None:
            elapsed += self.latency_hook(t_s)
        if self.deadline_slice_s is not None and elapsed > self.deadline_slice_s:
            self.breaker.record_failure(
                t_s, f"deadline overrun ({elapsed:.3f}s > {self.deadline_slice_s:.3f}s)"
            )
            return self._serve_fallback(
                obs,
                "policy_deadline",
                f"dispatch stage took {elapsed:.3f}s "
                f"(> {self.deadline_slice_s:.3f}s slice); "
                f"serving {self.fallback.name} heuristic",
            )
        self.breaker.record_success(t_s)
        return commands

    def observe_requests(self, requests) -> None:  # type: ignore[no-untyped-def]
        self.inner.observe_requests(requests)

    def on_cycle_end(self, obs: DispatchObservation) -> None:
        self.inner.on_cycle_end(obs)

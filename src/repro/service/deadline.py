"""Per-tick deadline budget and the deterministic service clock.

The paper's operating point is a dispatch decision in < 0.5 s per
5-minute cycle (vs ~300 s for the IP baselines).  The service splits
that tick budget into per-stage *slices* — ingest, predict, dispatch —
so one slow stage is caught at its own boundary instead of silently
eating the whole tick; a slice overrun is a breaker failure for that
stage's component.

Stage timing runs on an injectable clock.  :class:`ManualClock` is the
deterministic default for simulated runs and the chaos harness: injected
latency spikes *advance* it instead of sleeping, so a "30-second policy
stall" costs zero real time and reproduces bit-identically.  A live
deployment passes ``time.perf_counter`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass


class ManualClock:
    """A monotonic clock advanced explicitly — never by wall time."""

    def __init__(self, start_s: float = 0.0) -> None:
        self.now_s = float(start_s)

    def __call__(self) -> float:
        return self.now_s

    def advance(self, delta_s: float) -> None:
        if delta_s < 0:
            raise ValueError("clock can only advance forward")
        self.now_s += delta_s


@dataclass(frozen=True)
class DeadlineBudget:
    """One tick's compute budget, sliced per pipeline stage.

    Shares are fractions of ``tick_budget_s``; they must not oversubscribe
    the tick.  The dispatch slice is enforced through
    :class:`~repro.dispatch.base.DispatchGuard` (same overrun-discards
    semantics as the engine's own guard), the predict slice through the
    predictor breaker wrapper.
    """

    tick_budget_s: float = 0.5
    ingest_share: float = 0.2
    predict_share: float = 0.4
    dispatch_share: float = 0.4

    def __post_init__(self) -> None:
        if self.tick_budget_s <= 0:
            raise ValueError("tick budget must be positive")
        shares = (self.ingest_share, self.predict_share, self.dispatch_share)
        if any(s <= 0 for s in shares):
            raise ValueError("every stage share must be positive")
        if sum(shares) > 1.0 + 1e-9:
            raise ValueError("stage shares oversubscribe the tick budget")

    @property
    def ingest_slice_s(self) -> float:
        return self.tick_budget_s * self.ingest_share

    @property
    def predict_slice_s(self) -> float:
        return self.tick_budget_s * self.predict_share

    @property
    def dispatch_slice_s(self) -> float:
        return self.tick_budget_s * self.dispatch_share

"""Typed ingest records and their validation schema.

The online dispatch service ingests one kind of upstream data: matched
GPS fixes (person, time, position, landmark).  Every record is validated
against :class:`IngestSchema` before it can influence a dispatch
decision; a record that fails is *quarantined* with a machine-readable
reason code — never silently dropped, never silently ingested.

Reason codes are shared with the batch cleaning stage
(:mod:`repro.mobility.cleaning`): a NaN coordinate is the same
corruption whether it arrives in a bulk trace file or on the live feed,
so :data:`~repro.mobility.cleaning.REASON_NON_FINITE` and
:data:`~repro.mobility.cleaning.REASON_NON_MONOTONIC` carry the same
meaning in both places.  The service adds the codes only a *streaming*
validator can judge: future timestamps, duplicates, unknown identities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.cleaning import (
    REASON_NON_FINITE,
    REASON_NON_MONOTONIC,
    fix_reason,
)

#: Streaming-only reason codes (the batch cleaner cannot judge these).
REASON_OUT_OF_RANGE = "out_of_range_position"
REASON_DUPLICATE = "duplicate_timestamp"
REASON_FUTURE = "future_timestamp"
REASON_UNKNOWN_PERSON = "unknown_person"
REASON_UNKNOWN_NODE = "unknown_node"

#: Every reason code the ingest guard can emit, for report schemas.
ALL_REASONS = (
    REASON_NON_FINITE,
    REASON_NON_MONOTONIC,
    REASON_OUT_OF_RANGE,
    REASON_DUPLICATE,
    REASON_FUTURE,
    REASON_UNKNOWN_PERSON,
    REASON_UNKNOWN_NODE,
)


@dataclass(frozen=True)
class GpsRecord:
    """One matched GPS fix as the service ingests it.

    ``node`` is the map-matched landmark (matching happens upstream of
    the service, exactly as cleaning does in the batch pipeline); ``x``
    and ``y`` are the raw projected coordinates the fix carried, kept so
    range and finiteness can still be judged per record.
    """

    person_id: int
    t_s: float
    x: float
    y: float
    node: int


@dataclass(frozen=True)
class QuarantinedRecord:
    """A rejected record with its reason code and human-readable detail."""

    record: GpsRecord
    reason: str
    detail: str


@dataclass(frozen=True)
class IngestSchema:
    """Validation bounds for incoming GPS records.

    ``known_persons`` / ``known_nodes`` of ``None`` disable the
    respective identity check (negative ids are always rejected);
    ``future_slack_s`` tolerates bounded collector clock skew before a
    timestamp counts as "from the future".
    """

    width_m: float
    height_m: float
    known_persons: frozenset[int] | None = None
    known_nodes: frozenset[int] | None = None
    future_slack_s: float = 1.0

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("partition bounds must be positive")
        if self.future_slack_s < 0:
            raise ValueError("future slack must be non-negative")

    def validate(
        self, record: GpsRecord, now_s: float, last_t_s: float | None
    ) -> tuple[str, str] | None:
        """``(reason, detail)`` for an invalid record, ``None`` when valid.

        ``last_t_s`` is the newest previously *accepted* timestamp for
        this record's person (ordering is judged per person, exactly as
        the batch monotonicity validator does).  Checks run in a fixed
        order so a record failing several ways always quarantines under
        the same code.
        """
        reason = fix_reason(record.t_s, record.x, record.y)
        if reason is not None:
            return reason, f"t={record.t_s!r} x={record.x!r} y={record.y!r}"
        if record.t_s > now_s + self.future_slack_s:
            return REASON_FUTURE, f"t={record.t_s:.3f} is ahead of now={now_s:.3f}"
        if not (0.0 <= record.x <= self.width_m and 0.0 <= record.y <= self.height_m):
            return (
                REASON_OUT_OF_RANGE,
                f"({record.x:.1f}, {record.y:.1f}) outside "
                f"{self.width_m:.0f}x{self.height_m:.0f} m",
            )
        if record.person_id < 0 or (
            self.known_persons is not None
            and record.person_id not in self.known_persons
        ):
            return REASON_UNKNOWN_PERSON, f"person {record.person_id}"
        if self.known_nodes is not None and record.node not in self.known_nodes:
            return REASON_UNKNOWN_NODE, f"landmark {record.node}"
        if last_t_s is not None:
            if record.t_s == last_t_s:
                return REASON_DUPLICATE, f"t={record.t_s:.3f} already ingested"
            if record.t_s < last_t_s:
                return (
                    REASON_NON_MONOTONIC,
                    f"t={record.t_s:.3f} after t={last_t_s:.3f}",
                )
        return None

"""The shard supervisor: heartbeat watch, failover, rebalance.

:class:`ShardSupervisor` runs once per completed dispatch tick (wired to
the engine's ``on_cycle`` hook) and judges each shard by the heartbeat it
stamped — or failed to stamp — when the tick's snapshot drained:

* **dead** — no beat this tick.  After ``miss_threshold`` consecutive
  misses the shard's keyspace fails over to its nearest alive neighbour
  (the dead queue died with the process; nothing to transfer).
* **stalled** — beating, but ``stall_tolerance_s`` late, for
  ``stall_threshold`` consecutive ticks.  The shard is still reachable,
  so failover *transfers* its queue to the neighbour before moving the
  keyspace.
* **recovered** — a failed shard that beats again is probed; after a
  clean probe its home cells are restored (rebalance).  Probing is
  bounded: past ``max_probe_retries`` failed probes the shard is
  **abandoned** and its keyspace stays with the neighbour for good.

When no neighbour is alive the keyspace is left on the failed shard and
declared *degraded*: its positions simply stop arriving, and the
dispatch layer's own fallbacks (habitual positions, the nearest-team
heuristic) carry those regions.  Either way the supervisor only ever
*moves ownership between snapshots* — it never ticks the engine, so no
failover can cause an uncommanded dispatch cycle.

Everything lands in a bounded incident ring with exact cycle counts, and
:class:`FailoverEvent.uncovered_cycles` is the gate the chaos harness
checks against the failover budget.
"""

from __future__ import annotations

import logging
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.service.sharding.router import ShardedIngestGuard

logger = logging.getLogger("repro.service.sharding")

STATUS_ACTIVE = "active"
STATUS_FAILED = "failed"
STATUS_ABANDONED = "abandoned"


@dataclass(frozen=True)
class SupervisorConfig:
    """Detection thresholds, probe bounds, and the failover budget."""

    #: Consecutive missed heartbeats before a shard is declared dead.
    miss_threshold: int = 1
    #: Beat lateness tolerated before a beat counts as stalled.
    stall_tolerance_s: float = 5.0
    #: Consecutive stalled beats before the shard is failed over.
    stall_threshold: int = 3
    #: Recovery probes attempted before a failed shard is abandoned.
    max_probe_retries: int = 8
    #: Max cycles a failed shard's keyspace may go uncovered; failovers
    #: exceeding it are reported as budget violations by the harness.
    failover_budget_cycles: int = 3
    #: Capacity of the supervisor's incident ring.
    max_incidents: int = 1_000

    def __post_init__(self) -> None:
        if self.miss_threshold < 1 or self.stall_threshold < 1:
            raise ValueError("detection thresholds must be at least one cycle")
        if self.stall_tolerance_s < 0:
            raise ValueError("stall tolerance must be non-negative")
        if self.max_probe_retries < 1:
            raise ValueError("need at least one recovery probe")
        if self.failover_budget_cycles < 1:
            raise ValueError("failover budget must allow at least one cycle")
        if self.max_incidents < 1:
            raise ValueError("incident ring needs capacity")


@dataclass(frozen=True)
class FailoverEvent:
    """One keyspace move (or degradation), with its coverage gap."""

    t_s: float
    from_shard: int
    #: Receiving shard, or ``None`` when no neighbour was alive and the
    #: keyspace was left degraded in place.
    to_shard: int | None
    reason: str
    cells: tuple[int, ...]
    #: Ticks the keyspace went unserved between the first missed/stalled
    #: beat and this event taking effect.
    uncovered_cycles: int
    transferred_records: int = 0


@dataclass(frozen=True)
class RebalanceEvent:
    """Home cells returned to a recovered shard."""

    t_s: float
    shard: int
    cells: tuple[int, ...]
    probes_used: int


@dataclass
class _ShardWatch:
    """Supervisor-side state for one shard."""

    status: str = STATUS_ACTIVE
    missed_beats: int = 0
    stalled_beats: int = 0
    probes: int = 0
    failovers: int = 0


class ShardSupervisor:
    """Watches heartbeats; commands failover and rebalance moves."""

    def __init__(
        self,
        router: ShardedIngestGuard,
        config: SupervisorConfig | None = None,
        incident_sink: Callable[[str, str, float], None] | None = None,
    ) -> None:
        self.router = router
        self.config = config or SupervisorConfig()
        self._incident_sink = incident_sink
        self.watch = {shard.shard_id: _ShardWatch() for shard in router.shards}
        self.failovers: list[FailoverEvent] = []
        self.rebalances: list[RebalanceEvent] = []
        self.incidents: deque[dict[str, object]] = deque(
            maxlen=self.config.max_incidents
        )
        self.incidents_dropped = 0
        self.ticks_supervised = 0

    # -- incident plumbing -------------------------------------------------

    def _record(self, kind: str, detail: str, t_s: float) -> None:
        ring = self.incidents
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.incidents_dropped += 1
        ring.append({"kind": kind, "t_s": t_s, "detail": detail})
        if self._incident_sink is not None:
            self._incident_sink(kind, detail, t_s)

    # -- the per-tick judgement --------------------------------------------

    def on_tick(self, cycle_index: int, t_s: float) -> None:
        """Judge every shard's heartbeat for the tick that just drained.

        Call only for ticks where the snapshot actually ran (the sharded
        service checks ``router.last_snapshot_t_s``) — a tick served by
        the policy fallback without touching the feed says nothing about
        shard health.
        """
        self.ticks_supervised += 1
        for shard in self.router.shards:
            watch = self.watch[shard.shard_id]
            if watch.status == STATUS_ABANDONED:
                continue
            if watch.status == STATUS_FAILED:
                self._probe(shard.shard_id, t_s)
                continue
            if shard.last_beat_t_s != t_s:
                watch.stalled_beats = 0
                watch.missed_beats += 1
                if watch.missed_beats >= self.config.miss_threshold:
                    self._fail_over(shard.shard_id, t_s, reason="dead")
                continue
            if shard.last_beat_delay_s > self.config.stall_tolerance_s:
                watch.missed_beats = 0
                watch.stalled_beats += 1
                if watch.stalled_beats >= self.config.stall_threshold:
                    self._fail_over(shard.shard_id, t_s, reason="stalled")
                continue
            watch.missed_beats = 0
            watch.stalled_beats = 0

    # -- failover ----------------------------------------------------------

    def _fail_over(self, shard_id: int, t_s: float, reason: str) -> None:
        router = self.router
        watch = self.watch[shard_id]
        shard = router.shards[shard_id]
        uncovered = watch.missed_beats if reason == "dead" else 0
        target_id = router.assignment.neighbor_of(shard_id, router.alive_shards())
        cells = router.assignment.cells_of(shard_id)
        transferred = 0
        if target_id is None:
            # No alive neighbour: leave ownership in place, degraded.
            # The dispatch layer's fallbacks carry these regions until a
            # neighbour (or this shard) comes back.
            self._record(
                "shard_degraded",
                f"shard {shard_id} {reason} with no alive neighbour; "
                f"{len(cells)} cells degraded to fallback dispatch",
                t_s,
            )
            event_to: int | None = None
        else:
            if reason == "stalled" and shard.alive:
                transferred = shard.transfer_queue_to(router.shards[target_id])
            router.assignment.reassign(shard_id, target_id)
            self._record(
                "shard_failover",
                f"shard {shard_id} {reason}; {len(cells)} cells -> shard "
                f"{target_id} after {uncovered} uncovered cycle(s), "
                f"{transferred} queued records transferred",
                t_s,
            )
            event_to = target_id
        watch.status = STATUS_FAILED
        watch.failovers += 1
        watch.missed_beats = 0
        watch.stalled_beats = 0
        watch.probes = 0
        self.failovers.append(
            FailoverEvent(
                t_s=t_s,
                from_shard=shard_id,
                to_shard=event_to,
                reason=reason,
                cells=cells,
                uncovered_cycles=uncovered,
                transferred_records=transferred,
            )
        )
        logger.info(
            "failover: shard %d (%s) -> %s at t=%.0f", shard_id, reason, event_to, t_s
        )

    # -- recovery ----------------------------------------------------------

    def _probe(self, shard_id: int, t_s: float) -> None:
        watch = self.watch[shard_id]
        shard = self.router.shards[shard_id]
        watch.probes += 1
        healthy = (
            shard.alive
            and shard.last_beat_t_s == t_s
            and shard.last_beat_delay_s <= self.config.stall_tolerance_s
        )
        if healthy:
            cells = self.router.assignment.restore(shard_id)
            watch.status = STATUS_ACTIVE
            probes_used = watch.probes
            watch.probes = 0
            self.rebalances.append(
                RebalanceEvent(
                    t_s=t_s, shard=shard_id, cells=cells, probes_used=probes_used
                )
            )
            self._record(
                "shard_rebalance",
                f"shard {shard_id} recovered after {probes_used} probe(s); "
                f"{len(cells)} cells restored",
                t_s,
            )
            return
        if watch.probes >= self.config.max_probe_retries:
            watch.status = STATUS_ABANDONED
            self._record(
                "shard_abandoned",
                f"shard {shard_id} failed {watch.probes} recovery probes; "
                "keyspace stays with its failover target",
                t_s,
            )

    # -- reporting ---------------------------------------------------------

    def statuses(self) -> dict[int, str]:
        return {shard_id: watch.status for shard_id, watch in self.watch.items()}

    def max_uncovered_cycles(self) -> int:
        return max(
            (event.uncovered_cycles for event in self.failovers), default=0
        )

    def within_failover_budget(self) -> bool:
        return self.max_uncovered_cycles() <= self.config.failover_budget_cycles

    def summary(self) -> dict[str, object]:
        """JSON-ready digest for chaos reports and the service report."""
        return {
            "ticks_supervised": self.ticks_supervised,
            "statuses": {
                str(shard_id): watch.status
                for shard_id, watch in sorted(self.watch.items())
            },
            "failovers": [
                {
                    "t_s": event.t_s,
                    "from_shard": event.from_shard,
                    "to_shard": event.to_shard,
                    "reason": event.reason,
                    "cells": len(event.cells),
                    "uncovered_cycles": event.uncovered_cycles,
                    "transferred_records": event.transferred_records,
                }
                for event in self.failovers
            ],
            "rebalances": [
                {
                    "t_s": event.t_s,
                    "shard": event.shard,
                    "cells": len(event.cells),
                    "probes_used": event.probes_used,
                }
                for event in self.rebalances
            ],
            "max_uncovered_cycles": self.max_uncovered_cycles(),
            "failover_budget_cycles": self.config.failover_budget_cycles,
            "within_failover_budget": self.within_failover_budget(),
            "incidents": list(self.incidents),
            "incidents_dropped": self.incidents_dropped,
        }

"""The sharded dispatch service: isolation and failover over the loop.

:class:`ShardedDispatchService` is the PR 5 :class:`DispatchService`
with the single ingest guard swapped for a
:class:`~repro.service.sharding.router.ShardedIngestGuard` and a
:class:`~repro.service.sharding.supervisor.ShardSupervisor` riding the
engine's ``on_cycle`` heartbeat.  Everything else — breakers, deadline
budget, incident ring, the engine itself — is inherited unchanged, and
with zero shard faults the sharded run is **bit-identical** to the
unsharded service run (the shard chaos harness asserts exactly that).

The supervisor is only consulted on ticks where the snapshot actually
drained (``router.last_snapshot_t_s`` equals the tick time): a tick the
policy breaker served from its fallback never touched the feed, so
silent shards on such a tick are not evidence of death.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.charlotte import CharlotteScenario
from repro.dispatch.base import Dispatcher
from repro.perf.routing_cache import Router
from repro.service.loop import DispatchService, ServiceConfig, ServiceReport
from repro.service.sharding.partition import GridKeyspace
from repro.service.sharding.router import ShardedIngestGuard
from repro.service.sharding.supervisor import ShardSupervisor, SupervisorConfig
from repro.sim.engine import SimulationConfig
from repro.sim.requests import RescueRequest

if TYPE_CHECKING:
    from repro.faults.models import (
        ComponentFaultInjector,
        FaultInjector,
        ShardFaultInjector,
    )
    from repro.service.deadline import ManualClock


@dataclass(frozen=True)
class ShardingConfig:
    """Topology parameters: keyspace grid, shard count, supervision."""

    num_shards: int = 4
    cells_x: int = 8
    cells_y: int = 8
    #: Per-shard queue bound; ``None`` divides the service-level
    #: ``max_queue`` evenly so total capacity matches the unsharded run.
    shard_max_queue: int | None = None
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("need at least one shard")
        if self.cells_x < 1 or self.cells_y < 1:
            raise ValueError("keyspace needs at least one cell per axis")
        if self.shard_max_queue is not None and self.shard_max_queue < 1:
            raise ValueError("per-shard queue bound must be positive")

    def max_queue_per_shard(self, service_max_queue: int) -> int:
        if self.shard_max_queue is not None:
            return self.shard_max_queue
        return max(1, service_max_queue // self.num_shards)


@dataclass
class ShardedServiceReport(ServiceReport):
    """The service report plus the supervisor's failover digest."""

    supervisor: dict[str, object] = field(default_factory=dict)

    def summary(self) -> dict[str, object]:
        payload = super().summary()
        payload["supervisor"] = self.supervisor
        return payload


class ShardedDispatchService(DispatchService):
    """A :class:`DispatchService` whose ingest layer is N isolated shards."""

    def __init__(
        self,
        scenario: CharlotteScenario,
        requests: list[RescueRequest],
        dispatcher: Dispatcher,
        config: SimulationConfig,
        service: ServiceConfig | None = None,
        sharding: ShardingConfig | None = None,
        faults: "FaultInjector | None" = None,
        component_faults: "ComponentFaultInjector | None" = None,
        shard_faults: "ShardFaultInjector | None" = None,
        router: Router | None = None,
        clock: "ManualClock | None" = None,
        known_persons: frozenset[int] | None = None,
    ) -> None:
        super().__init__(
            scenario,
            requests,
            dispatcher,
            config,
            service=service,
            faults=faults,
            component_faults=component_faults,
            router=router,
            clock=clock,
            known_persons=known_persons,
        )
        self.sharding = sharding or ShardingConfig()
        shr = self.sharding
        svc = self.service
        self.shard_faults = (
            shard_faults
            if shard_faults is not None and not shard_faults.is_null
            else None
        )
        keyspace = GridKeyspace(
            scenario.partition.width_m,
            scenario.partition.height_m,
            cells_x=shr.cells_x,
            cells_y=shr.cells_y,
        )
        fault_hook = None
        if self.shard_faults is not None:
            fault_hook = self._shard_fault_hook
        self.sharded_guard = ShardedIngestGuard(
            schema=self.ingest_guard.schema,
            keyspace=keyspace,
            num_shards=shr.num_shards,
            shard_max_queue=shr.max_queue_per_shard(svc.max_queue),
            max_quarantine=svc.max_quarantine,
            max_tracked_persons=svc.max_tracked_persons,
            fault_hook=fault_hook,
        )
        # The sharded guard *is* the service's ingest guard from here on:
        # the validated feed routes through it and the report reads its
        # aggregated stats through the same surface.
        self.ingest_guard = self.sharded_guard  # type: ignore[assignment]
        if self.validated_feed is not None:
            self.validated_feed.guard = self.sharded_guard  # type: ignore[assignment]
        self.supervisor = ShardSupervisor(
            self.sharded_guard,
            config=shr.supervisor,
            incident_sink=self.record_incident,
        )

    # -- shard fault plumbing ----------------------------------------------

    def _shard_fault_hook(self, t_s: float) -> None:
        """Apply the injector's window state to every shard at ``t``.

        Pure function of simulated time: kill transitions fire exactly
        at window edges, stall/skew levels follow their windows.  Runs
        at most once per distinct timestamp (the router memoises).
        """
        injector = self.shard_faults
        if injector is None:
            return
        for shard in self.sharded_guard.shards:
            killed = injector.killed(shard.shard_id, t_s)
            if killed and shard.alive:
                lost = shard.kill()
                self.record_incident(
                    "shard_killed",
                    f"shard {shard.shard_id} process died "
                    f"({lost} queued records lost)",
                    t_s,
                )
            elif not killed and not shard.alive:
                shard.revive()
                self.record_incident(
                    "shard_revived", f"shard {shard.shard_id} process is back", t_s
                )
            shard.stall_s = injector.stall_s(shard.shard_id, t_s)
            shard.capacity_divisor = injector.capacity_divisor(shard.shard_id, t_s)

    # -- supervision on the heartbeat --------------------------------------

    def _on_cycle(self, cycle_index: int, t_s: float, ran: bool) -> None:
        super()._on_cycle(cycle_index, t_s, ran)
        if self.sharded_guard.last_snapshot_t_s == t_s:
            self.supervisor.on_tick(cycle_index, t_s)

    # -- running -----------------------------------------------------------

    def run(self) -> ShardedServiceReport:
        base = super().run()
        return ShardedServiceReport(
            result=base.result,
            ticks_expected=base.ticks_expected,
            ticks_completed=base.ticks_completed,
            incidents=base.incidents,
            incidents_dropped=base.incidents_dropped,
            predictor_breaker=base.predictor_breaker,
            policy_breaker=base.policy_breaker,
            ingest=base.ingest,
            policy_fallback_cycles=base.policy_fallback_cycles,
            predictor_fallback_serves=base.predictor_fallback_serves,
            supervisor=self.supervisor.summary(),
        )

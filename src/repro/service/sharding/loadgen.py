"""Deterministic million-user load generation for the sharded ingest.

Replays synthetic GPS traffic from hundreds of thousands of users
against a :class:`~repro.service.sharding.router.ShardedIngestGuard`
plus supervisor, entirely on the injectable
:class:`~repro.service.deadline.ManualClock` — simulated time advances
tick by tick, so a "million records per hour" campaign needs seconds of
wall time, not an hour.  The shape follows the classic end-to-end
dispatch-simulation harness: build the synthetic fleet once, then drive
the service loop tick by tick while recording per-shard throughput and
latency percentiles.

Everything is a pure function of the config and seed: users get fixed
home coordinates from a seeded generator; each tick emits a
round-robin window of users (timestamps strictly increase per user, so
the validator sees a clean stream); per-tick jitter comes from a
generator keyed ``(seed, tag, tick)``.  An **overload burst** aims a
configurable multiple of the steady rate at one hot cell for a few
ticks — the hot shard must shed oldest-first under its bounded queue,
never raise, and the totals must reconcile exactly.

Latency is modelled, not measured: an accepted record's ingest latency
is the base service time plus its queue position over the drain rate —
a deterministic M/D/1-flavoured proxy that makes p50/p95/p99 meaningful
(and reproducible) without wall-clock noise.  The wall-clock throughput
of the harness itself is reported separately.
"""

from __future__ import annotations

import datetime
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.artifacts import atomic_write_json
from repro.core.streams import STREAM_LOADGEN_HOMES, STREAM_LOADGEN_JITTER
from repro.service.deadline import ManualClock
from repro.service.records import GpsRecord, IngestSchema
from repro.service.sharding.partition import GridKeyspace, merge_counter_sum
from repro.service.sharding.router import ShardedIngestGuard
from repro.service.sharding.supervisor import ShardSupervisor, SupervisorConfig

LOADGEN_FORMAT = "repro-loadgen"
LOADGEN_VERSION = 1

# The loadgen's substream tags are registered in repro.core.streams,
# disjoint from the shard fault tags by the REP6xx project lint.


@dataclass(frozen=True)
class LoadgenConfig:
    """One load campaign: fleet size, rates, topology, overload burst."""

    num_users: int = 300_000
    records_per_user_hour: float = 4.0
    sim_hours: float = 1.0
    tick_s: float = 300.0
    num_shards: int = 8
    cells_x: int = 16
    cells_y: int = 16
    width_m: float = 30_000.0
    height_m: float = 30_000.0
    shard_max_queue: int = 20_000
    #: Overload burst: for ``burst_ticks`` ticks starting at
    #: ``burst_start_tick``, an extra ``burst_multiplier - 1`` times the
    #: steady per-tick rate is aimed at the keyspace's hot cell.
    burst_multiplier: float = 4.0
    burst_ticks: int = 2
    burst_start_tick: int = 4
    #: Latency model: ``base_latency_s + queue_position / drain_rate_rps``.
    base_latency_s: float = 0.002
    drain_rate_rps: float = 25_000.0
    seed: int = 0
    quick: bool = False

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("need at least one synthetic user")
        if self.records_per_user_hour <= 0 or self.sim_hours <= 0:
            raise ValueError("rates and window must be positive")
        if self.tick_s <= 0:
            raise ValueError("tick must be positive")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")
        if self.drain_rate_rps <= 0:
            raise ValueError("drain rate must be positive")

    @property
    def num_ticks(self) -> int:
        return max(1, int(round(self.sim_hours * 3_600.0 / self.tick_s)))

    @property
    def steady_records_per_tick(self) -> int:
        per_hour = self.num_users * self.records_per_user_hour
        return max(1, int(round(per_hour * self.tick_s / 3_600.0)))


def quick_config(seed: int = 0) -> LoadgenConfig:
    """The CI-sized campaign: thousands of users, a few ticks."""
    return LoadgenConfig(
        num_users=4_000,
        records_per_user_hour=4.0,
        sim_hours=0.25,
        num_shards=4,
        cells_x=8,
        cells_y=8,
        shard_max_queue=500,
        burst_multiplier=6.0,
        burst_ticks=1,
        burst_start_tick=1,
        seed=seed,
        quick=True,
    )


class LoadGenerator:
    """Drives one deterministic load campaign against a sharded guard."""

    def __init__(self, config: LoadgenConfig | None = None) -> None:
        self.config = config or LoadgenConfig()
        cfg = self.config
        schema = IngestSchema(width_m=cfg.width_m, height_m=cfg.height_m)
        keyspace = GridKeyspace(
            cfg.width_m, cfg.height_m, cells_x=cfg.cells_x, cells_y=cfg.cells_y
        )
        self.router = ShardedIngestGuard(
            schema=schema,
            keyspace=keyspace,
            num_shards=cfg.num_shards,
            shard_max_queue=cfg.shard_max_queue,
            max_tracked_persons=max(cfg.num_users, 1),
        )
        self.supervisor = ShardSupervisor(self.router, SupervisorConfig())
        self.clock = ManualClock()
        homes_rng = np.random.default_rng([cfg.seed, STREAM_LOADGEN_HOMES])
        self._home_x = homes_rng.uniform(0.0, cfg.width_m, size=cfg.num_users)
        self._home_y = homes_rng.uniform(0.0, cfg.height_m, size=cfg.num_users)
        # The hot cell's centre: burst traffic lands here, all on one shard.
        self._hot_x = cfg.width_m * 0.5
        self._hot_y = cfg.height_m * 0.5
        self._offset = 0
        self.offered = 0
        self._latencies: list[list[float]] = [[] for _ in range(cfg.num_shards)]
        self._max_queue_seen = [0] * cfg.num_shards

    # -- record synthesis --------------------------------------------------

    def _steady_batch(self, tick: int, t_s: float) -> list[GpsRecord]:
        cfg = self.config
        n = min(cfg.steady_records_per_tick, cfg.num_users)
        ids = (self._offset + np.arange(n)) % cfg.num_users
        self._offset = int((self._offset + n) % cfg.num_users)
        jitter = np.random.default_rng([cfg.seed, STREAM_LOADGEN_JITTER, tick])
        dx = jitter.normal(0.0, 50.0, size=n)
        dy = jitter.normal(0.0, 50.0, size=n)
        x = np.clip(self._home_x[ids] + dx, 0.0, cfg.width_m)
        y = np.clip(self._home_y[ids] + dy, 0.0, cfg.height_m)
        return [
            GpsRecord(
                person_id=int(pid), t_s=t_s, x=float(xi), y=float(yi), node=0
            )
            for pid, xi, yi in zip(ids.tolist(), x.tolist(), y.tolist())
        ]

    def _burst_batch(self, tick: int, t_s: float) -> list[GpsRecord]:
        """Extra hot-cell traffic; offset timestamps keep streams monotone."""
        cfg = self.config
        in_burst = (
            cfg.burst_multiplier > 1.0
            and cfg.burst_start_tick <= tick < cfg.burst_start_tick + cfg.burst_ticks
        )
        if not in_burst:
            return []
        extra = int(round(cfg.steady_records_per_tick * (cfg.burst_multiplier - 1.0)))
        extra = min(extra, cfg.num_users)
        ids = np.arange(extra)
        return [
            GpsRecord(
                person_id=int(pid),
                t_s=t_s + 1.0,
                x=self._hot_x,
                y=self._hot_y,
                node=0,
            )
            for pid in ids.tolist()
        ]

    # -- the campaign loop -------------------------------------------------

    def run_tick(self, tick: int) -> None:
        cfg = self.config
        t_s = tick * cfg.tick_s
        self.clock.advance((t_s + cfg.tick_s) - self.clock())
        records = self._steady_batch(tick, t_s)
        records.extend(self._burst_batch(tick, t_s))
        base = cfg.base_latency_s
        rate = cfg.drain_rate_rps
        for record in records:
            self.offered += 1
            shard = self.router.shard_for(record)
            if self.router.submit(record, now_s=t_s + 2.0):
                queued = shard.guard.queued
                sid = shard.shard_id
                self._latencies[sid].append(base + queued / rate)
                if queued > self._max_queue_seen[sid]:
                    self._max_queue_seen[sid] = queued
        snapshot_t = t_s + cfg.tick_s / 2.0
        self.router.snapshot(snapshot_t)
        self.supervisor.on_tick(tick, snapshot_t)

    def run(self, progress=None) -> dict[str, Any]:
        """Run every tick; return the JSON-ready loadgen payload."""
        cfg = self.config
        wall_start = time.perf_counter()
        for tick in range(cfg.num_ticks):
            if progress and (tick % 4 == 0 or tick == cfg.num_ticks - 1):
                progress(
                    f"loadgen tick {tick + 1}/{cfg.num_ticks} "
                    f"({self.offered:,} records offered)"
                )
            self.run_tick(tick)
        wall_s = time.perf_counter() - wall_start
        return self._payload(wall_s)

    # -- reporting ---------------------------------------------------------

    def _per_shard(self) -> list[dict[str, Any]]:
        rows = []
        for shard in self.router.shards:
            sid = shard.shard_id
            latencies = self._latencies[sid]
            if latencies:
                arr = np.asarray(latencies)
                p50, p95, p99 = (
                    float(np.percentile(arr, q)) * 1_000.0 for q in (50, 95, 99)
                )
            else:
                p50 = p95 = p99 = 0.0
            guard = shard.guard
            rows.append(
                {
                    "shard": sid,
                    "cells": len(self.router.assignment.cells_of(sid)),
                    "accepted": guard.accepted,
                    "shed": guard.shed,
                    "drained": guard.drained,
                    "queued_final": guard.queued,
                    "quarantined": sum(guard.rejected_by_reason.values()),
                    "max_queue_seen": self._max_queue_seen[sid],
                    "p50_ms": round(p50, 4),
                    "p95_ms": round(p95, 4),
                    "p99_ms": round(p99, 4),
                }
            )
        return rows

    def reconciles(self) -> bool:
        """Global conservation: offered splits exactly across outcomes."""
        router = self.router
        quarantined = merge_counter_sum(
            merge_counter_sum(shard.guard.rejected_by_reason.values())
            for shard in router.shards
        )
        offered_ok = self.offered == router.accepted + quarantined + router.lost
        return offered_ok and router.reconciles()

    def _payload(self, wall_s: float) -> dict[str, Any]:
        cfg = self.config
        router = self.router
        sim_hours = cfg.num_ticks * cfg.tick_s / 3_600.0
        stats = router.stats()
        return {
            "format": LOADGEN_FORMAT,
            "version": LOADGEN_VERSION,
            "date": datetime.date.today().isoformat(),
            "quick": bool(cfg.quick),
            "python": platform.python_version(),
            "platform": sys.platform,
            "config": {
                "num_users": cfg.num_users,
                "records_per_user_hour": cfg.records_per_user_hour,
                "sim_hours": sim_hours,
                "tick_s": cfg.tick_s,
                "num_shards": cfg.num_shards,
                "cells": cfg.cells_x * cfg.cells_y,
                "shard_max_queue": cfg.shard_max_queue,
                "burst_multiplier": cfg.burst_multiplier,
                "burst_ticks": cfg.burst_ticks,
                "seed": cfg.seed,
            },
            "totals": {
                "offered": self.offered,
                "accepted": router.accepted,
                "quarantined": stats["rejected_total"],
                "shed": router.shed,
                "drained": router.drained,
                "queued_final": router.queued,
                "lost": router.lost,
            },
            "throughput": {
                "records_per_sim_hour": round(self.offered / sim_hours, 1),
                "wall_s": round(wall_s, 3),
                "records_per_wall_s": round(self.offered / max(wall_s, 1e-9), 1),
            },
            "per_shard": self._per_shard(),
            "supervisor": self.supervisor.summary(),
            "reconciliation_ok": self.reconciles(),
        }


def validate_loadgen_payload(payload: Any) -> list[str]:
    """Schema check for a loadgen artifact; returns problem strings."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload must be a JSON object"]
    if payload.get("format") != LOADGEN_FORMAT:
        problems.append(f"format must be {LOADGEN_FORMAT!r}")
    if not isinstance(payload.get("version"), int):
        problems.append("version must be an integer")
    for key in ("date", "python", "platform"):
        if not isinstance(payload.get(key), str):
            problems.append(f"{key} must be a string")
    if not isinstance(payload.get("quick"), bool):
        problems.append("quick must be a boolean")
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        problems.append("totals must be an object")
    else:
        for key in ("offered", "accepted", "quarantined", "shed", "lost"):
            if not isinstance(totals.get(key), int):
                problems.append(f"totals.{key} must be an integer")
    throughput = payload.get("throughput")
    if not isinstance(throughput, dict):
        problems.append("throughput must be an object")
    elif not isinstance(throughput.get("records_per_sim_hour"), (int, float)):
        problems.append("throughput.records_per_sim_hour must be a number")
    per_shard = payload.get("per_shard")
    if not isinstance(per_shard, list) or not per_shard:
        problems.append("per_shard must be a non-empty list")
    else:
        for i, row in enumerate(per_shard):
            if not isinstance(row, dict):
                problems.append(f"per_shard[{i}] must be an object")
                continue
            for key in ("shard", "accepted", "shed"):
                if not isinstance(row.get(key), int):
                    problems.append(f"per_shard[{i}].{key} must be an integer")
            for key in ("p50_ms", "p95_ms", "p99_ms"):
                if not isinstance(row.get(key), (int, float)):
                    problems.append(f"per_shard[{i}].{key} must be a number")
    if payload.get("reconciliation_ok") is not True:
        problems.append("reconciliation_ok must be true")
    return problems


def default_output_path(payload: dict[str, Any]) -> str:
    return f"LOADGEN_{payload['date']}.json"


def format_loadgen_report(payload: dict[str, Any]) -> str:
    """Human-readable digest of a loadgen artifact."""
    totals = payload["totals"]
    throughput = payload["throughput"]
    lines = [
        f"repro loadgen — {payload['date']}  "
        f"(quick={payload['quick']}, python {payload['python']})",
        f"  offered {totals['offered']:,} records "
        f"({throughput['records_per_sim_hour']:,.0f}/simulated hour, "
        f"wall {throughput['wall_s']:.1f}s)",
        f"  accepted {totals['accepted']:,}  shed {totals['shed']:,}  "
        f"quarantined {totals['quarantined']:,}  lost {totals['lost']:,}",
        "",
        f"  {'shard':>5}  {'accepted':>10}  {'shed':>8}  {'maxq':>7}  "
        f"{'p50ms':>8}  {'p95ms':>8}  {'p99ms':>8}",
    ]
    for row in payload["per_shard"]:
        lines.append(
            f"  {row['shard']:>5}  {row['accepted']:>10,}  {row['shed']:>8,}  "
            f"{row['max_queue_seen']:>7,}  {row['p50_ms']:>8.3f}  "
            f"{row['p95_ms']:>8.3f}  {row['p99_ms']:>8.3f}"
        )
    lines.append("")
    lines.append(
        "  reconciliation: "
        + ("exact" if payload["reconciliation_ok"] else "BROKEN")
    )
    return "\n".join(lines)


def run_loadgen(
    config: LoadgenConfig | None = None,
    out_path: str | None = None,
    progress=None,
) -> dict[str, Any]:
    """Run one campaign; optionally persist the artifact atomically."""
    payload = LoadGenerator(config).run(progress=progress)
    if out_path is not None:
        atomic_write_json(out_path, payload)
    return payload

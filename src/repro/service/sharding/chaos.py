"""Shard-level chaos: kill shards mid-run, then prove the invariants.

Extends the PR 5 chaos pattern to the sharded topology.  Per seed the
harness runs a *triple*:

1. a **clean unsharded service run** — the PR 5 reference;
2. a **clean sharded run** — asserted **bit-identical** to (1), so the
   whole sharding layer demonstrably costs nothing when healthy;
3. a **shard-chaos run** under a named shard-fault profile (kill /
   stall / hot-shard skew windows from :mod:`repro.faults`).

The chaos run is judged against explicit invariants: no exception
escaped, every dispatch tick completed (a dead shard never stalls the
loop), every failover re-covered its keyspace within the supervisor's
budget, per-shard record accounting reconciles exactly, and the served
count stayed within the degradation factor of the clean run.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.core.artifacts import atomic_write_json
from repro.faults.models import ComponentFaultInjector, FaultInjector, ShardFaultInjector
from repro.faults.profiles import (
    get_component_profile,
    get_profile,
    get_shard_profile,
)
from repro.service.chaos import ChaosConfig, ChaosHarness, results_bit_identical
from repro.service.sharding.service import (
    ShardedDispatchService,
    ShardedServiceReport,
    ShardingConfig,
)

logger = logging.getLogger("repro.service.sharding.chaos")


@dataclass(frozen=True)
class ShardChaosConfig(ChaosConfig):
    """A shard chaos campaign: the base campaign plus the topology.

    ``profile`` names a :data:`~repro.faults.profiles.SHARD_PROFILES`
    entry; ``env_profile`` optionally layers an environment/component
    profile from the base harness on top of the shard faults.
    """

    profile: str = "shard-blackout"
    env_profile: str = "none"
    sharding: ShardingConfig = field(default_factory=ShardingConfig)


@dataclass
class ShardSeedVerdict:
    """Invariant outcomes for one seed's unsharded/sharded/chaos triple."""

    seed: int
    clean_served: int
    chaos_served: int
    equivalence_ok: bool
    ticks_ok: bool
    no_escape: bool
    failover_budget_ok: bool
    reconciliation_ok: bool
    degradation_ok: bool
    violations: list[str]
    clean_summary: dict[str, object]
    chaos_summary: dict[str, object]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_json(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "clean_served": self.clean_served,
            "chaos_served": self.chaos_served,
            "equivalence_ok": self.equivalence_ok,
            "ticks_ok": self.ticks_ok,
            "no_escape": self.no_escape,
            "failover_budget_ok": self.failover_budget_ok,
            "reconciliation_ok": self.reconciliation_ok,
            "degradation_ok": self.degradation_ok,
            "violations": list(self.violations),
            "clean": self.clean_summary,
            "chaos": self.chaos_summary,
        }


class ShardChaosHarness(ChaosHarness):
    """One small world, seeded unsharded/sharded/shard-chaos triples."""

    def __init__(self, config: ShardChaosConfig | None = None) -> None:
        self.shard_config = config or ShardChaosConfig()
        # The base world builder must not try to resolve the shard
        # profile name as an environment profile, so hand it a base
        # config with the optional environment profile instead.
        base = ChaosConfig(
            profile=self.shard_config.env_profile,
            seeds=self.shard_config.seeds,
            population_size=self.shard_config.population_size,
            num_teams=self.shard_config.num_teams,
            window_days=self.shard_config.window_days,
            eval_day=self.shard_config.eval_day,
            degradation_factor=self.shard_config.degradation_factor,
            service=self.shard_config.service,
        )
        super().__init__(base)

    def _sharded_service(
        self, seed: int, with_shard_faults: bool
    ) -> ShardedDispatchService:
        cfg = self.config
        scfg = self.shard_config
        faults = component_faults = shard_faults = None
        if with_shard_faults:
            shard_faults = ShardFaultInjector(
                get_shard_profile(scfg.profile), self.t0_s, self.t1_s, seed=seed
            )
            if scfg.env_profile != "none":
                faults = FaultInjector(
                    get_profile(scfg.env_profile), self.t0_s, self.t1_s, seed=seed
                )
                component_faults = ComponentFaultInjector(
                    get_component_profile(scfg.env_profile), seed=seed
                )
        return ShardedDispatchService(
            self.scenario,
            list(self.requests),
            self._make_dispatcher(seed),
            self._sim_config(seed),
            service=cfg.service,
            sharding=scfg.sharding,
            faults=faults,
            component_faults=component_faults,
            shard_faults=shard_faults,
            known_persons=self.known_persons,
        )

    def run_seed(self, seed: int) -> ShardSeedVerdict:
        scfg = self.shard_config
        violations: list[str] = []

        def record_violation(message: str) -> None:
            violations.append(message)

        clean_unsharded = self._service(seed, with_faults=False).run()
        clean_sharded = self._sharded_service(seed, with_shard_faults=False).run()
        equivalence_ok = results_bit_identical(
            clean_unsharded.result, clean_sharded.result
        )
        if not equivalence_ok:
            record_violation(
                f"seed {seed}: clean sharded run diverged from the unsharded "
                f"service run (served {clean_sharded.result.num_served} "
                f"vs {clean_unsharded.result.num_served})"
            )
        if not clean_sharded.all_ticks_completed:
            record_violation(
                f"seed {seed}: clean sharded run skipped ticks "
                f"({clean_sharded.ticks_completed}/{clean_sharded.ticks_expected})"
            )

        chaos_service = self._sharded_service(seed, with_shard_faults=True)
        no_escape = True
        chaos_report: ShardedServiceReport | None = None
        try:
            chaos_report = chaos_service.run()
        except Exception as exc:  # repro: allow-broad-except -- chaos invariant: record the escape as a violation, never crash the harness
            no_escape = False
            record_violation(
                f"seed {seed}: exception escaped the sharded service under "
                f"chaos ({type(exc).__name__}: {exc})"
            )
            logger.exception("shard chaos run escaped for seed %d", seed)

        ticks_ok = failover_budget_ok = reconciliation_ok = degradation_ok = True
        chaos_served = 0
        chaos_summary: dict[str, object] = {}
        if no_escape and chaos_report is not None:
            chaos_served = chaos_report.result.num_served
            chaos_summary = chaos_report.summary()
            ticks_ok = chaos_report.all_ticks_completed
            if not ticks_ok:
                record_violation(
                    f"seed {seed}: shard chaos run skipped ticks "
                    f"({chaos_report.ticks_completed}/"
                    f"{chaos_report.ticks_expected})"
                )
            supervisor = chaos_service.supervisor
            failover_budget_ok = supervisor.within_failover_budget()
            if not failover_budget_ok:
                record_violation(
                    f"seed {seed}: keyspace went uncovered for "
                    f"{supervisor.max_uncovered_cycles()} cycles "
                    f"(budget {supervisor.config.failover_budget_cycles})"
                )
            reconciliation_ok = chaos_service.sharded_guard.reconciles()
            if not reconciliation_ok:
                record_violation(
                    f"seed {seed}: per-shard record accounting does not "
                    "reconcile (accepted+transferred != "
                    "drained+queued+shed+transferred_out+lost)"
                )
            clean_served = clean_unsharded.result.num_served
            if clean_served > 0:
                degradation_ok = (
                    chaos_served * scfg.degradation_factor >= clean_served
                )
                if not degradation_ok:
                    record_violation(
                        f"seed {seed}: shard chaos served {chaos_served} < "
                        f"{clean_served}/{scfg.degradation_factor:g}"
                    )

        verdict = ShardSeedVerdict(
            seed=seed,
            clean_served=clean_unsharded.result.num_served,
            chaos_served=chaos_served,
            equivalence_ok=equivalence_ok,
            ticks_ok=ticks_ok,
            no_escape=no_escape,
            failover_budget_ok=failover_budget_ok,
            reconciliation_ok=reconciliation_ok,
            degradation_ok=degradation_ok,
            violations=violations,
            clean_summary=clean_sharded.summary(),
            chaos_summary=chaos_summary,
        )
        logger.info(
            "shard chaos seed %d: %s (%d violations)",
            seed,
            "OK" if verdict.ok else "VIOLATED",
            len(violations),
        )
        return verdict

    def run(self, progress=None) -> dict[str, object]:
        scfg = self.shard_config
        verdicts = []
        for seed in scfg.seeds:
            if progress:
                progress(
                    f"shard chaos triple for seed {seed} under {scfg.profile!r}..."
                )
            verdicts.append(self.run_seed(seed))
        return {
            "profile": scfg.profile,
            "env_profile": scfg.env_profile,
            "seeds": list(scfg.seeds),
            "population_size": scfg.population_size,
            "num_teams": scfg.num_teams,
            "window_days": scfg.window_days,
            "degradation_factor": scfg.degradation_factor,
            "num_shards": scfg.sharding.num_shards,
            "ok": all(v.ok for v in verdicts),
            "violations": [m for v in verdicts for m in v.violations],
            "runs": [v.as_json() for v in verdicts],
        }


def run_shard_chaos(
    config: ShardChaosConfig | None = None,
    out_path: str | None = None,
    progress=None,
) -> dict[str, object]:
    """Run a shard chaos campaign; optionally persist the report."""
    report = ShardChaosHarness(config).run(progress=progress)
    if out_path is not None:
        atomic_write_json(out_path, report)
    return report

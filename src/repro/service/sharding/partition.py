"""Keyspace partitioning and order-insensitive shard reducers.

The ingest stream is partitioned *geographically*: the rectangular study
region is overlaid with a coarse grid (a fixed-precision geohash), every
GPS record is routed by the grid cell its coordinates fall in, and each
cell is owned by exactly one shard.  :class:`GridKeyspace` maps
coordinates to cells; :class:`ShardAssignment` maps cells to shards and
carries the *current* ownership separately from the *home* ownership so
failover can move a dead shard's cells to a neighbour and rebalancing
can move them back.

The module also hosts the shard reducers.  Merging per-shard results
must never depend on dict or set iteration order (reprolint REP402
guards exactly this package for it): every merge below sorts its inputs
by a stable key before folding, so the merged artefact is a pure
function of the *set* of per-shard results.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.service.records import GpsRecord


class GridKeyspace:
    """Fixed grid over the study rectangle; cell ids are the keyspace.

    ``cell_of`` is total: coordinates outside the rectangle are clamped
    to the border cell and non-finite coordinates land in cell 0, so
    *every* record — including garbage the guard will quarantine — has a
    deterministic owner.  Cell ids are row-major.
    """

    def __init__(
        self, width_m: float, height_m: float, cells_x: int = 8, cells_y: int = 8
    ) -> None:
        if width_m <= 0 or height_m <= 0:
            raise ValueError("keyspace bounds must be positive")
        if cells_x < 1 or cells_y < 1:
            raise ValueError("keyspace needs at least one cell per axis")
        self.width_m = float(width_m)
        self.height_m = float(height_m)
        self.cells_x = int(cells_x)
        self.cells_y = int(cells_y)

    @property
    def num_cells(self) -> int:
        return self.cells_x * self.cells_y

    def cells(self) -> range:
        return range(self.num_cells)

    def cell_of(self, x: float, y: float) -> int:
        """Row-major cell id for a coordinate pair (total function)."""
        if not (math.isfinite(x) and math.isfinite(y)):
            return 0
        cx = min(self.cells_x - 1, max(0, int(x / self.width_m * self.cells_x)))
        cy = min(self.cells_y - 1, max(0, int(y / self.height_m * self.cells_y)))
        return cy * self.cells_x + cx


class ShardAssignment:
    """Cell-to-shard ownership with failover and restore moves.

    *Home* ownership is fixed at construction: contiguous row-major
    stripes of cells, so a shard's home keyspace is a geographic band.
    *Current* ownership starts at home and changes only through
    :meth:`reassign` (failover) and :meth:`restore` (rebalance) — both
    return the cells they moved so the supervisor can log them.
    """

    def __init__(self, keyspace: GridKeyspace, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if num_shards > keyspace.num_cells:
            raise ValueError("more shards than keyspace cells")
        self.keyspace = keyspace
        self.num_shards = int(num_shards)
        n = keyspace.num_cells
        self._home: dict[int, int] = {
            cell: min(num_shards - 1, cell * num_shards // n) for cell in keyspace.cells()
        }
        self._current: dict[int, int] = dict(self._home)

    def owner(self, cell: int) -> int:
        return self._current[cell]

    def home_owner(self, cell: int) -> int:
        return self._home[cell]

    def cells_of(self, shard_id: int) -> tuple[int, ...]:
        """Cells the shard currently owns, in cell-id order."""
        return tuple(
            cell for cell in sorted(self._current) if self._current[cell] == shard_id
        )

    def home_cells_of(self, shard_id: int) -> tuple[int, ...]:
        return tuple(
            cell for cell in sorted(self._home) if self._home[cell] == shard_id
        )

    def reassign(self, from_shard: int, to_shard: int) -> tuple[int, ...]:
        """Move every cell currently owned by ``from_shard`` to ``to_shard``."""
        moved = self.cells_of(from_shard)
        for cell in moved:
            self._current[cell] = to_shard
        return moved

    def restore(self, shard_id: int) -> tuple[int, ...]:
        """Return the shard's *home* cells to it, wherever they are now."""
        moved = tuple(
            cell
            for cell in self.home_cells_of(shard_id)
            if self._current[cell] != shard_id
        )
        for cell in moved:
            self._current[cell] = shard_id
        return moved

    def uncovered_cells(self, alive: Iterable[int]) -> tuple[int, ...]:
        """Cells whose current owner is not in ``alive`` (sorted)."""
        alive_set = frozenset(alive)
        return tuple(
            cell
            for cell in sorted(self._current)
            if self._current[cell] not in alive_set
        )

    def neighbor_of(self, shard_id: int, alive: Iterable[int]) -> int | None:
        """Nearest alive shard by ring distance; ties break low.

        Home stripes are contiguous, so ring distance on shard ids is
        geographic adjacency; the deterministic tie-break keeps failover
        a pure function of (dead shard, alive set).
        """
        candidates = sorted(set(alive) - {shard_id})
        if not candidates:
            return None
        n = self.num_shards

        def ring_distance(other: int) -> int:
            d = abs(other - shard_id)
            return min(d, n - d)

        return min(candidates, key=lambda other: (ring_distance(other), other))


def merge_shard_records(record_lists: Iterable[list[GpsRecord]]) -> dict[int, int]:
    """Reduce per-shard drained records into one position snapshot.

    The newest fix per person wins.  Records are folded in sorted
    ``(person, t, node)`` order, so the result — including the dict's
    key order, which downstream consumers iterate — is independent of
    which shard drained first.  Key order matches the unsharded guard's
    snapshot (ascending person id) on the clean path.
    """
    ordered = sorted(
        (record for records in record_lists for record in records),
        key=lambda r: (r.person_id, r.t_s, r.node),
    )
    positions: dict[int, int] = {}
    for record in ordered:
        positions[record.person_id] = record.node
    return positions


def merge_reason_counts(counts: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Reduce per-shard quarantine reason counters into one map.

    Keys are folded in sorted order so the merged dict is identical no
    matter how the per-shard maps are ordered or sequenced.
    """
    merged: dict[str, int] = {}
    keyed = sorted(
        (reason, counter[reason]) for counter in counts for reason in sorted(counter)
    )
    for reason, count in keyed:
        merged[reason] = merged.get(reason, 0) + count
    return merged


def merge_counter_sum(values: Iterable[int]) -> int:
    """Reduce per-shard scalar counters; ``sum`` is order-insensitive."""
    return sum(values)

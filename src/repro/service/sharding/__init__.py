"""Sharded ingest topology: isolation, failover, and load generation.

The single guarded loop of PR 5 scaled out: the GPS ingest stream is
partitioned geographically across N isolated shards
(:mod:`~repro.service.sharding.partition`,
:mod:`~repro.service.sharding.shard`,
:mod:`~repro.service.sharding.router`), a supervisor watches heartbeats
and commands bounded failover/rebalance moves
(:mod:`~repro.service.sharding.supervisor`), the sharded service wires
it into the PR 5 loop with bit-identity on the clean path
(:mod:`~repro.service.sharding.service`), shard-level chaos proves the
invariants (:mod:`~repro.service.sharding.chaos`), and the deterministic
load generator drives millions of synthetic records per simulated hour
(:mod:`~repro.service.sharding.loadgen`).
"""

from repro.service.sharding.loadgen import (
    LOADGEN_FORMAT,
    LoadgenConfig,
    LoadGenerator,
    default_output_path,
    format_loadgen_report,
    quick_config,
    run_loadgen,
    validate_loadgen_payload,
)
from repro.service.sharding.partition import (
    GridKeyspace,
    ShardAssignment,
    merge_counter_sum,
    merge_reason_counts,
    merge_shard_records,
)
from repro.service.sharding.router import ShardedIngestGuard
from repro.service.sharding.service import (
    ShardedDispatchService,
    ShardedServiceReport,
    ShardingConfig,
)
from repro.service.sharding.shard import Shard
from repro.service.sharding.chaos import (
    ShardChaosConfig,
    ShardChaosHarness,
    ShardSeedVerdict,
    run_shard_chaos,
)
from repro.service.sharding.supervisor import (
    STATUS_ABANDONED,
    STATUS_ACTIVE,
    STATUS_FAILED,
    FailoverEvent,
    RebalanceEvent,
    ShardSupervisor,
    SupervisorConfig,
)

__all__ = [
    "LOADGEN_FORMAT",
    "STATUS_ABANDONED",
    "STATUS_ACTIVE",
    "STATUS_FAILED",
    "FailoverEvent",
    "GridKeyspace",
    "LoadGenerator",
    "LoadgenConfig",
    "RebalanceEvent",
    "Shard",
    "ShardAssignment",
    "ShardChaosConfig",
    "ShardChaosHarness",
    "ShardSeedVerdict",
    "ShardSupervisor",
    "ShardedDispatchService",
    "ShardedIngestGuard",
    "ShardedServiceReport",
    "ShardingConfig",
    "SupervisorConfig",
    "default_output_path",
    "format_loadgen_report",
    "merge_counter_sum",
    "merge_reason_counts",
    "merge_shard_records",
    "quick_config",
    "run_loadgen",
    "run_shard_chaos",
    "validate_loadgen_payload",
]

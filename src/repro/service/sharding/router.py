"""The sharded ingest guard: routes by keyspace, merges by reducer.

:class:`ShardedIngestGuard` presents the exact ``submit`` / ``snapshot``
/ ``stats`` surface of a single :class:`~repro.service.ingest.IngestGuard`,
so the :class:`~repro.service.ingest.ValidatedPositionFeed` and the
service report code work unchanged on top of N isolated shards.

Routing is geographic: each record goes to the current owner of the
grid cell its coordinates fall in.  Snapshots visit shards in shard-id
order, but the merge itself is order-insensitive
(:func:`~repro.service.sharding.partition.merge_shard_records` sorts by
person before folding), so the produced snapshot — including dict key
order — is bit-identical to the unsharded guard's on the clean path.

An optional ``fault_hook`` is applied lazily, at most once per distinct
timestamp, before any routing at that timestamp: the chaos layer uses
it to flip shard health (kill / stall / skew) as a pure function of
simulated time.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.service.ingest import IngestGuard
from repro.service.records import GpsRecord, IngestSchema
from repro.service.sharding.partition import (
    GridKeyspace,
    ShardAssignment,
    merge_counter_sum,
    merge_reason_counts,
    merge_shard_records,
)
from repro.service.sharding.shard import Shard

#: ``fault_hook(t_s)`` mutates shard health for the tick at ``t_s``.
ShardFaultHook = Callable[[float], None]


class ShardedIngestGuard:
    """N isolated ingest guards behind the one-guard interface."""

    def __init__(
        self,
        schema: IngestSchema,
        keyspace: GridKeyspace,
        num_shards: int,
        shard_max_queue: int = 50_000,
        max_quarantine: int = 2_000,
        max_tracked_persons: int = 100_000,
        fault_hook: ShardFaultHook | None = None,
    ) -> None:
        self.schema = schema
        self.keyspace = keyspace
        self.assignment = ShardAssignment(keyspace, num_shards)
        self.shards = [
            Shard(
                shard_id,
                IngestGuard(
                    schema,
                    max_queue=shard_max_queue,
                    max_quarantine=max_quarantine,
                    max_tracked_persons=max_tracked_persons,
                ),
            )
            for shard_id in range(num_shards)
        ]
        self.fault_hook = fault_hook
        self._fault_applied_t: float | None = None
        #: Timestamp of the last snapshot drain — the supervisor only
        #: judges heartbeats on ticks where the feed demonstrably ran.
        self.last_snapshot_t_s: float | None = None

    # -- fault plumbing ----------------------------------------------------

    def _apply_faults(self, t_s: float) -> None:
        if self.fault_hook is None or self._fault_applied_t == t_s:
            return
        self._fault_applied_t = t_s
        self.fault_hook(t_s)

    # -- the IngestGuard surface -------------------------------------------

    def shard_for(self, record: GpsRecord) -> Shard:
        cell = self.keyspace.cell_of(record.x, record.y)
        return self.shards[self.assignment.owner(cell)]

    def submit(self, record: GpsRecord, now_s: float) -> bool:
        self._apply_faults(now_s)
        return self.shard_for(record).submit(record, now_s)

    def snapshot(self, now_s: float | None = None) -> dict[int, int]:
        """Drain every live shard, stamp heartbeats, merge positions.

        ``now_s`` stamps the heartbeats; a ``None`` (legacy single-guard
        call shape) stamps them with the previous snapshot time, which
        keeps the merge correct but makes supervision a no-op — the
        sharded service always passes the tick time.
        """
        if now_s is not None:
            self._apply_faults(now_s)
        beat_t = now_s if now_s is not None else self.last_snapshot_t_s
        drains: list[list[GpsRecord]] = []
        for shard in self.shards:
            drained = shard.drain_snapshot(beat_t if beat_t is not None else 0.0)
            if drained is not None:
                drains.append(drained)
        self.last_snapshot_t_s = beat_t
        return merge_shard_records(drains)

    @property
    def queued(self) -> int:
        return merge_counter_sum(shard.guard.queued for shard in self.shards)

    @property
    def accepted(self) -> int:
        return merge_counter_sum(shard.guard.accepted for shard in self.shards)

    @property
    def shed(self) -> int:
        return merge_counter_sum(shard.guard.shed for shard in self.shards)

    @property
    def drained(self) -> int:
        return merge_counter_sum(shard.guard.drained for shard in self.shards)

    @property
    def lost(self) -> int:
        return merge_counter_sum(shard.lost for shard in self.shards)

    def alive_shards(self) -> tuple[int, ...]:
        return tuple(shard.shard_id for shard in self.shards if shard.alive)

    def reconciles(self) -> bool:
        """Every shard's conservation identity, checked exactly."""
        return all(shard.reconciles() for shard in self.shards)

    def stats(self) -> dict[str, object]:
        """Aggregated counters in the unsharded guard's shape, plus
        ``per_shard`` detail for the service report."""
        reasons = merge_reason_counts(
            shard.guard.rejected_by_reason for shard in self.shards
        )
        return {
            "accepted": self.accepted,
            "shed": self.shed,
            "queued": self.queued,
            "drained": self.drained,
            "rejected_by_reason": reasons,
            "rejected_total": merge_counter_sum(reasons.values()),
            "quarantine_kept": merge_counter_sum(
                len(shard.guard.quarantined) for shard in self.shards
            ),
            "quarantine_dropped": merge_counter_sum(
                shard.guard.quarantine_dropped for shard in self.shards
            ),
            "tracked_persons": merge_counter_sum(
                shard.guard.tracked_persons for shard in self.shards
            ),
            "tracked_evictions": merge_counter_sum(
                shard.guard.tracked_evictions for shard in self.shards
            ),
            "lost": self.lost,
            "transferred": merge_counter_sum(
                shard.transferred_in for shard in self.shards
            ),
            "num_shards": len(self.shards),
            "per_shard": [shard.stats() for shard in self.shards],
        }

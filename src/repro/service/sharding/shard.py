"""One ingest shard: an isolated guard plus fault-injectable health.

A :class:`Shard` owns a private :class:`~repro.service.ingest.IngestGuard`
— its validation state, quarantine ring, and bounded queue are *not*
shared with any other shard, so a poisoned or saturated region degrades
only its own keyspace.  The shard's health fields (``alive``,
``stall_s``, ``capacity_divisor``) are written by the shard fault layer
and read by the supervisor through the heartbeat the shard stamps every
time it drains for a snapshot.

Accounting is exact by construction.  Per shard::

    accepted + transferred_in
        == drained + queued + shed + transferred_out + lost

Every flow touches exactly one term on each side: a validated submit
adds ``accepted`` and ``queued``; a snapshot moves ``queued`` to
``drained``; backpressure moves ``queued`` to ``shed``; failover moves
``queued`` to ``transferred_out`` (and ``transferred_in`` at the
receiver); a kill moves ``queued`` to ``lost``.  The saturation tests
reconcile these totals per shard and across shards.
"""

from __future__ import annotations

from repro.service.ingest import IngestGuard
from repro.service.records import GpsRecord


class Shard:
    """An isolated ingest guard with a heartbeat and injectable health."""

    def __init__(self, shard_id: int, guard: IngestGuard) -> None:
        self.shard_id = int(shard_id)
        self.guard = guard
        #: Health, written by the fault layer: a dead shard accepts and
        #: drains nothing; a stalled shard beats ``stall_s`` late; a
        #: skewed shard runs with ``max_queue // capacity_divisor``.
        self.alive = True
        self.stall_s = 0.0
        self.capacity_divisor = 1
        #: Heartbeat: stamped on every successful drain, read by the
        #: supervisor.  ``last_beat_delay_s`` carries the injected stall
        #: so a late-but-beating shard is distinguishable from a dead one.
        self.last_beat_t_s: float | None = None
        self.last_beat_delay_s = 0.0
        #: Records destroyed with the process, split by whether they had
        #: been accepted: ``lost_submits`` hit a dead shard and never
        #: entered the guard; ``lost_queued`` were accepted and sitting
        #: in the queue when the process died.
        self.lost_submits = 0
        self.lost_queued = 0
        self.transferred_in = 0
        self.transferred_out = 0

    @property
    def lost(self) -> int:
        return self.lost_submits + self.lost_queued

    def submit(self, record: GpsRecord, now_s: float) -> bool:
        """Route one record into the shard's guard; dead shards lose it."""
        if not self.alive:
            self.lost_submits += 1
            return False
        return self.guard.submit(record, now_s)

    def drain_snapshot(self, now_s: float) -> list[GpsRecord] | None:
        """Drain for this tick's snapshot and stamp the heartbeat.

        Returns ``None`` (and stamps no beat) when the shard is dead —
        exactly the signal the supervisor's miss counter watches.  A
        live-but-skewed shard first sheds oldest-first down to its
        reduced capacity; a live-but-stalled shard still drains, but the
        beat carries the injected delay.
        """
        if not self.alive:
            return None
        if self.capacity_divisor > 1:
            self.guard.shed_to(self.guard.max_queue // self.capacity_divisor)
        records = self.guard.drain()
        self.last_beat_t_s = now_s
        self.last_beat_delay_s = self.stall_s
        return records

    def kill(self) -> int:
        """Process death: the queue dies with it.  Returns records lost."""
        self.alive = False
        dropped = len(self.guard.take_queue())
        self.lost_queued += dropped
        return dropped

    def revive(self) -> None:
        """The shard's process is back (fault window ended).

        The guard object persists — counters are the externally-observed
        totals for this shard id, which survive a process restart the
        way a metrics store does.
        """
        self.alive = True

    def transfer_queue_to(self, other: "Shard") -> int:
        """Failover hand-off: move every queued record to ``other``.

        The records were validated here, so the receiver enqueues them
        without re-validation (its own backpressure still applies).
        """
        records = self.guard.take_queue()
        self.transferred_out += len(records)
        other.transferred_in += other.guard.requeue(records)
        return len(records)

    def reconciles(self) -> bool:
        """Check the shard's conservation identity exactly.

        Every record the guard accepted (or took over in a transfer) is
        accounted for in exactly one terminal state; ``lost_submits``
        never entered the guard so it appears on neither side.
        """
        guard = self.guard
        inflow = guard.accepted + self.transferred_in
        outflow = (
            guard.drained
            + guard.queued
            + guard.shed
            + self.transferred_out
            + self.lost_queued
        )
        return inflow == outflow

    def stats(self) -> dict[str, object]:
        """JSON-ready per-shard counters (guard stats + shard flows)."""
        payload = self.guard.stats()
        payload.update(
            {
                "shard": self.shard_id,
                "alive": self.alive,
                "lost": self.lost,
                "lost_submits": self.lost_submits,
                "lost_queued": self.lost_queued,
                "transferred_in": self.transferred_in,
                "transferred_out": self.transferred_out,
                "last_beat_t_s": self.last_beat_t_s,
            }
        )
        return payload

"""Circuit breakers for the learned components of the tick pipeline.

A breaker sits between the service loop and one fallible component (the
SVM predictor, the RL policy).  It is a three-state machine driven
exclusively by the *simulation clock* — cooldowns are deterministic
functions of ``obs.t_s``, never of wall time, so a seeded run trips and
recovers identically every time:

``closed``
    Normal operation.  Consecutive failures are counted; reaching
    ``failure_threshold`` trips the breaker open.

``open``
    The component is not called at all; the caller serves its fallback.
    After ``cooldown_s`` of simulated time the next request transitions
    to half-open.

``half_open``
    One probe request is allowed through.  Success closes the breaker
    (full reset); failure re-opens it for another cooldown.

Deadline overruns and exceptions both count as failures — a component
that answers correctly but too late is as useless to a 5-minute tick as
one that crashes (PAPER.md: the whole advantage over the IP baselines is
answering inside the deadline).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold and deterministic cooldown for one breaker."""

    failure_threshold: int = 3
    cooldown_s: float = 1_800.0
    #: Ring capacity for the transition history kept for reports.
    max_transitions: int = 256

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown must be positive")
        if self.max_transitions < 1:
            raise ValueError("transition ring needs positive capacity")


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change, stamped with simulation time."""

    t_s: float
    from_state: str
    to_state: str
    detail: str = ""


class CircuitBreaker:
    """Closed/open/half-open breaker on the deterministic sim clock."""

    def __init__(self, name: str, config: BreakerConfig | None = None) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        #: Simulation time at which an open breaker admits a probe.
        self._retry_at_s: float | None = None
        self.failures = 0
        self.successes = 0
        self.trips = 0
        self.transitions: deque[BreakerTransition] = deque(
            maxlen=self.config.max_transitions
        )
        self.transitions_dropped = 0

    def _transition(self, t_s: float, to_state: str, detail: str = "") -> None:
        ring = self.transitions
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.transitions_dropped += 1
        ring.append(BreakerTransition(t_s, self.state, to_state, detail))
        self.state = to_state

    def allow(self, t_s: float) -> bool:
        """May the component be called at simulation time ``t_s``?

        An open breaker whose cooldown has elapsed transitions to
        half-open here and admits the probe call.
        """
        if self.state == STATE_OPEN:
            if self._retry_at_s is not None and t_s >= self._retry_at_s:
                self._transition(t_s, STATE_HALF_OPEN, "cooldown elapsed")
                return True
            return False
        return True

    def record_success(self, t_s: float) -> None:
        """The guarded call completed inside its deadline."""
        self.successes += 1
        if self.state == STATE_HALF_OPEN:
            self._transition(t_s, STATE_CLOSED, "probe succeeded")
            self._retry_at_s = None
        self.consecutive_failures = 0

    def record_failure(self, t_s: float, detail: str = "") -> bool:
        """The guarded call raised or overran; returns True when this
        failure tripped (or re-tripped) the breaker open."""
        self.failures += 1
        if self.state == STATE_HALF_OPEN:
            self.trips += 1
            self._retry_at_s = t_s + self.config.cooldown_s
            self._transition(t_s, STATE_OPEN, detail or "probe failed")
            return True
        self.consecutive_failures += 1
        if (
            self.state == STATE_CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.trips += 1
            self._retry_at_s = t_s + self.config.cooldown_s
            self._transition(
                t_s,
                STATE_OPEN,
                detail or f"{self.consecutive_failures} consecutive failures",
            )
            return True
        return False

    def snapshot(self) -> dict[str, object]:
        """JSON-ready state for run reports."""
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
            "transitions": [
                {
                    "t_s": tr.t_s,
                    "from": tr.from_state,
                    "to": tr.to_state,
                    "detail": tr.detail,
                }
                for tr in self.transitions
            ],
            "transitions_dropped": self.transitions_dropped,
        }

"""The resilient dispatch service: guards wired around the engine loop.

:class:`DispatchService` does not reimplement the tick loop — the
simulation engine *is* the service loop (one dispatch cycle per 5-minute
period); the service contributes the armour around it:

* the dispatcher's position feed is routed through the ingest guard
  (validation, quarantine, backpressure) — see
  :mod:`repro.service.ingest`;
* the SVM predictor gets a circuit breaker with last-known-good
  fallback, the RL policy gets one with a nearest-team heuristic
  fallback — see :mod:`repro.service.guards`;
* each stage is timed against its slice of the per-tick deadline budget
  on a deterministic clock — see :mod:`repro.service.deadline`;
* every degradation lands in a bounded service incident log, and the
  engine's ``on_cycle`` heartbeat proves no tick was ever skipped.

With zero faults every layer passes through untouched, so a guarded run
is bit-identical to a plain engine run — the golden-equivalence tests
hold the service to exactly that.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.charlotte import CharlotteScenario
from repro.dispatch.base import Dispatcher
from repro.perf.routing_cache import Router
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.deadline import DeadlineBudget, ManualClock
from repro.service.guards import GuardedPredictor, ResilientDispatcher
from repro.service.ingest import (
    IngestGuard,
    RecordCorrupter,
    ValidatedPositionFeed,
    make_record_corrupter,
)
from repro.service.records import IngestSchema
from repro.sim.engine import (
    IncidentEvent,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.kernel import build_simulator
from repro.sim.requests import RescueRequest

if TYPE_CHECKING:
    from repro.faults.models import ComponentFaultInjector, FaultInjector

logger = logging.getLogger("repro.service.loop")


@dataclass(frozen=True)
class ServiceConfig:
    """Resilience parameters: deadline slices, breakers, ingest bounds."""

    deadline: DeadlineBudget = field(default_factory=DeadlineBudget)
    predictor_breaker: BreakerConfig = field(default_factory=BreakerConfig)
    policy_breaker: BreakerConfig = field(default_factory=BreakerConfig)
    max_queue: int = 50_000
    max_quarantine: int = 2_000
    max_tracked_persons: int = 100_000
    future_slack_s: float = 1.0
    #: Capacity of the service incident ring (separate from the engine's).
    max_incidents: int = 10_000

    def __post_init__(self) -> None:
        if self.max_queue < 1 or self.max_quarantine < 1:
            raise ValueError("ingest bounds must be positive")
        if self.max_tracked_persons < 1:
            raise ValueError("per-person tracking bound must be positive")
        if self.future_slack_s < 0:
            raise ValueError("future slack must be non-negative")
        if self.max_incidents < 1:
            raise ValueError("incident ring needs capacity for at least one event")


@dataclass
class ServiceReport:
    """Everything a run of the dispatch service produced."""

    result: SimulationResult
    ticks_expected: int
    ticks_completed: int
    #: Service-level degradations (breaker trips, fallback serves,
    #: quarantine storms); the engine's own incidents live in ``result``.
    incidents: deque[IncidentEvent]
    incidents_dropped: int
    predictor_breaker: dict[str, object]
    policy_breaker: dict[str, object]
    ingest: dict[str, object]
    policy_fallback_cycles: int
    predictor_fallback_serves: int

    @property
    def all_ticks_completed(self) -> bool:
        return self.ticks_completed == self.ticks_expected

    def summary(self) -> dict[str, object]:
        """JSON-ready digest for chaos reports and CI artifacts."""
        return {
            "dispatcher": self.result.dispatcher_name,
            "served": self.result.num_served,
            "requests": len(self.result.requests),
            "ticks_expected": self.ticks_expected,
            "ticks_completed": self.ticks_completed,
            "engine_incidents": len(self.result.incidents),
            "engine_incidents_dropped": self.result.incidents_dropped,
            "service_incidents": len(self.incidents),
            "service_incidents_dropped": self.incidents_dropped,
            "service_incident_kinds": self._incident_kinds(),
            "predictor_breaker": self.predictor_breaker,
            "policy_breaker": self.policy_breaker,
            "ingest": self.ingest,
            "policy_fallback_cycles": self.policy_fallback_cycles,
            "predictor_fallback_serves": self.predictor_fallback_serves,
        }

    def _incident_kinds(self) -> dict[str, int]:
        kinds: dict[str, int] = {}
        for event in self.incidents:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return dict(sorted(kinds.items()))


class DispatchService:
    """One resilient online run of a dispatcher over an evaluation window.

    Wires the ingest guard, both circuit breakers and the deadline budget
    around ``dispatcher``, then drives the engine.  The dispatcher's
    ``predictor`` / ``positions_fn`` / ``incident_sink`` attributes (when
    present — the MobiRescue dispatcher has all three) are **replaced in
    place** with their guarded wrappers; treat the dispatcher as owned by
    the service for the duration of the run.

    ``component_faults`` composes the chaos layer: predictor exceptions,
    policy latency spikes (advancing the deterministic ``clock``), and
    corrupt-record storms ahead of the ingest guard.
    """

    def __init__(
        self,
        scenario: CharlotteScenario,
        requests: list[RescueRequest],
        dispatcher: Dispatcher,
        config: SimulationConfig,
        service: ServiceConfig | None = None,
        faults: "FaultInjector | None" = None,
        component_faults: "ComponentFaultInjector | None" = None,
        router: Router | None = None,
        clock: ManualClock | None = None,
        known_persons: frozenset[int] | None = None,
    ) -> None:
        self.scenario = scenario
        self.requests = requests
        self.config = config
        self.service = service or ServiceConfig()
        self.clock = clock if clock is not None else ManualClock()
        self.component_faults = (
            component_faults
            if component_faults is not None and not component_faults.is_null
            else None
        )
        svc = self.service
        self.incidents: deque[IncidentEvent] = deque(maxlen=svc.max_incidents)
        self.incidents_dropped = 0
        self.ticks_completed = 0

        self.predictor_breaker = CircuitBreaker("predictor", svc.predictor_breaker)
        self.policy_breaker = CircuitBreaker("policy", svc.policy_breaker)

        # -- stage 1: ingest guard around the position feed ---------------
        schema = IngestSchema(
            width_m=scenario.partition.width_m,
            height_m=scenario.partition.height_m,
            known_persons=known_persons,
            known_nodes=frozenset(scenario.network.landmark_ids()),
            future_slack_s=svc.future_slack_s,
        )
        self.ingest_guard = IngestGuard(
            schema,
            max_queue=svc.max_queue,
            max_quarantine=svc.max_quarantine,
            max_tracked_persons=svc.max_tracked_persons,
        )
        corrupter: RecordCorrupter | None = None
        if self.component_faults is not None:
            corrupter = make_record_corrupter(self.component_faults)
        self.validated_feed: ValidatedPositionFeed | None = None
        inner_positions = getattr(dispatcher, "positions_fn", None)
        if inner_positions is not None:
            self.validated_feed = ValidatedPositionFeed(
                inner_positions,
                self.ingest_guard,
                scenario.network,
                clock=self.clock,
                deadline_slice_s=svc.deadline.ingest_slice_s,
                incident_sink=self.record_incident,
                corrupter=corrupter,
            )
            dispatcher.positions_fn = self.validated_feed  # type: ignore[attr-defined]

        # -- stage 2: predictor breaker ------------------------------------
        self.guarded_predictor: GuardedPredictor | None = None
        inner_predictor = getattr(dispatcher, "predictor", None)
        if inner_predictor is not None:
            fault_hook = None
            if self.component_faults is not None:
                injector = self.component_faults
                fault_hook = lambda t: injector.predictor_fails(int(t))  # noqa: E731
            self.guarded_predictor = GuardedPredictor(
                inner_predictor,
                self.predictor_breaker,
                self.clock,
                deadline_slice_s=svc.deadline.predict_slice_s,
                incident_sink=self.record_incident,
                fault_hook=fault_hook,
            )
            dispatcher.predictor = self.guarded_predictor  # type: ignore[attr-defined]
        if hasattr(dispatcher, "incident_sink"):
            dispatcher.incident_sink = (  # type: ignore[attr-defined]
                lambda detail, t: self.record_incident(
                    "prediction_degraded", detail, t
                )
            )

        # -- stage 3: policy breaker + heuristic fallback ------------------
        latency_hook = None
        if self.component_faults is not None:
            injector = self.component_faults
            latency_hook = lambda t: injector.policy_spike_s(int(t))  # noqa: E731
        self.resilient_dispatcher = ResilientDispatcher(
            dispatcher,
            self.policy_breaker,
            self.clock,
            deadline_slice_s=svc.deadline.dispatch_slice_s,
            incident_sink=self.record_incident,
            latency_hook=latency_hook,
        )

        self._sim = build_simulator(
            scenario,
            requests,
            self.resilient_dispatcher,
            config,
            faults=faults,
            router=router,
            on_cycle=self._on_cycle,
        )

    # -- observability -----------------------------------------------------

    def record_incident(self, kind: str, detail: str, t_s: float) -> None:
        """Bounded service incident log (the breaker/guard sink)."""
        ring = self.incidents
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.incidents_dropped += 1
        ring.append(IncidentEvent(kind=kind, t_s=t_s, team_id=None, detail=detail))
        logger.info("service incident %s t=%.0f (%s)", kind, t_s, detail)

    def _on_cycle(self, cycle_index: int, t_s: float, ran: bool) -> None:
        self.ticks_completed += 1

    def expected_ticks(self) -> int:
        """Dispatch cycles the engine will execute over the window."""
        cfg = self.config
        ticks = 0
        t = cfg.t0_s
        next_dispatch = cfg.t0_s
        while t <= cfg.t1_s:
            if t >= next_dispatch:
                ticks += 1
                next_dispatch += cfg.dispatch_period_s
            t += cfg.step_s
        return ticks

    # -- running -----------------------------------------------------------

    def run(self) -> ServiceReport:
        result = self._sim.run()
        report = ServiceReport(
            result=result,
            ticks_expected=self.expected_ticks(),
            ticks_completed=self.ticks_completed,
            incidents=self.incidents,
            incidents_dropped=self.incidents_dropped,
            predictor_breaker=self.predictor_breaker.snapshot(),
            policy_breaker=self.policy_breaker.snapshot(),
            ingest=self.ingest_guard.stats(),
            policy_fallback_cycles=self.resilient_dispatcher.fallback_cycles,
            predictor_fallback_serves=(
                self.guarded_predictor.fallback_serves
                if self.guarded_predictor is not None
                else 0
            ),
        )
        logger.info(
            "service run complete: %d/%d ticks, %d service incidents, "
            "%d policy fallbacks",
            report.ticks_completed,
            report.ticks_expected,
            len(report.incidents),
            report.policy_fallback_cycles,
        )
        return report

"""Composable chaos harness: break everything, then prove the invariants.

One :class:`ChaosHarness` run executes, per seed, a *triple*:

1. a **plain engine run** of a fresh MobiRescue system — the golden
   baseline;
2. a **clean service run** (all guards wired, zero faults) of an
   identically-built system — asserted **bit-identical** to the baseline,
   so the armour demonstrably costs nothing when nothing is broken;
3. a **chaos run** composing the environment fault profile from
   :mod:`repro.faults` (GPS dropouts, comm loss, breakdowns, closures,
   dispatch-center failures) with the component-level profile (predictor
   exceptions, policy latency spikes, corrupt-record storms).

The chaos run is then judged against explicit invariants rather than
vibes: every dispatch tick completed, no exception escaped the service,
and the served count stayed within ``degradation_factor`` of the clean
run.  Any violation is reported with the seed and detail; the CLI turns
violations into a nonzero exit so CI can gate on them.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.artifacts import atomic_write_json
from repro.core.config import MobiRescueConfig
from repro.core.positions import PopulationFeed
from repro.core.predictor import RequestPredictor, TrainingSet
from repro.core.rl_dispatcher import MobiRescueDispatcher, make_agent
from repro.data import DatasetSpec, build_dataset
from repro.faults.models import ComponentFaultInjector, FaultInjector
from repro.faults.profiles import get_component_profile, get_profile
from repro.mobility.cleaning import clean_trace
from repro.mobility.mapmatch import map_match
from repro.service.loop import DispatchService, ServiceConfig, ServiceReport
from repro.sim.engine import RescueSimulator, SimulationConfig, SimulationResult
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index

logger = logging.getLogger("repro.service.chaos")


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign: profile, seeds, window, pass criteria."""

    profile: str = "severe"
    seeds: tuple[int, ...] = (0, 1)
    population_size: int = 500
    num_teams: int = 15
    window_days: float = 0.5
    eval_day: str = "Sep 16"
    #: Chaos must serve at least ``clean_served / degradation_factor``
    #: requests (checked only when the clean run served any).
    degradation_factor: float = 3.0
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.window_days <= 0:
            raise ValueError("evaluation window must be positive")
        if self.degradation_factor < 1.0:
            raise ValueError("degradation factor must be >= 1")


@dataclass
class SeedVerdict:
    """Invariant outcomes for one seed's baseline/clean/chaos triple."""

    seed: int
    clean_served: int
    chaos_served: int
    equivalence_ok: bool
    ticks_ok: bool
    no_escape: bool
    degradation_ok: bool
    violations: list[str]
    clean_summary: dict[str, object]
    chaos_summary: dict[str, object]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_json(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "clean_served": self.clean_served,
            "chaos_served": self.chaos_served,
            "equivalence_ok": self.equivalence_ok,
            "ticks_ok": self.ticks_ok,
            "no_escape": self.no_escape,
            "degradation_ok": self.degradation_ok,
            "violations": list(self.violations),
            "clean": self.clean_summary,
            "chaos": self.chaos_summary,
        }


def results_bit_identical(a: SimulationResult, b: SimulationResult) -> bool:
    """Exact equality of every recorded artifact (floats included)."""
    return (
        a.pickups == b.pickups
        and a.deliveries == b.deliveries
        and a.serving_samples == b.serving_samples
        and a.incidents == b.incidents
        and a.requests == b.requests
        and a.num_served == b.num_served
    )


class ChaosHarness:
    """Build one small world once, then run seeded chaos triples in it.

    The world is the test-scale Florence dataset (evaluation) plus the
    Michael scenario (the predictor's training storm, matching the
    paper's train-on-Michael / evaluate-on-Florence split); each seed
    gets freshly-built agents so runs are independent and reproducible.
    """

    def __init__(self, config: ChaosConfig | None = None) -> None:
        self.config = config or ChaosConfig()
        cfg = self.config
        self.scenario, bundle = build_dataset(
            DatasetSpec(storm="florence", population_size=cfg.population_size)
        )
        self.michael_scenario, _ = build_dataset(
            DatasetSpec(storm="michael", population_size=cfg.population_size)
        )
        part = self.scenario.partition
        cleaned, _ = clean_trace(bundle.trace, part.width_m, part.height_m)
        self._matched = map_match(cleaned, self.scenario.network)
        self.known_persons = frozenset(int(p) for p in self._matched.persons())

        day = day_index(self.scenario.timeline, cfg.eval_day)
        self.t0_s = day * SECONDS_PER_DAY
        self.t1_s = (day + cfg.window_days) * SECONDS_PER_DAY
        self.requests = remap_to_operable(
            requests_from_rescues(bundle.rescues, self.t0_s, self.t1_s),
            self.scenario.network,
            self.scenario.flood,
        )
        # The predictor is shared read-only across runs: SVM inference is
        # stateless, so reuse cannot leak state between triples.
        rng = np.random.default_rng(21)
        x = rng.normal(size=(80, 3))
        y = (x.sum(axis=1) > 0).astype(int)
        self.predictor = (
            RequestPredictor(self.michael_scenario, flood_gated=False)
            .fit(TrainingSet(x=x, y=y))
            .clone_for(self.scenario)
        )

    def _sim_config(self, seed: int) -> SimulationConfig:
        cfg = self.config
        return SimulationConfig(
            t0_s=self.t0_s, t1_s=self.t1_s, num_teams=cfg.num_teams, seed=seed
        )

    def _make_dispatcher(self, seed: int) -> MobiRescueDispatcher:
        """A fresh MobiRescue system; fresh agent => bit-reproducible runs."""
        mcfg = MobiRescueConfig(seed=5)
        return MobiRescueDispatcher(
            self.scenario,
            self.predictor,
            PopulationFeed(self._matched, cache_size=8),
            make_agent(mcfg),
            mcfg,
            training=False,
        )

    def _service(
        self, seed: int, with_faults: bool
    ) -> DispatchService:
        cfg = self.config
        faults = component_faults = None
        if with_faults:
            faults = FaultInjector(
                get_profile(cfg.profile), self.t0_s, self.t1_s, seed=seed
            )
            component_faults = ComponentFaultInjector(
                get_component_profile(cfg.profile), seed=seed
            )
        return DispatchService(
            self.scenario,
            list(self.requests),
            self._make_dispatcher(seed),
            self._sim_config(seed),
            service=cfg.service,
            faults=faults,
            component_faults=component_faults,
            known_persons=self.known_persons,
        )

    def run_seed(self, seed: int) -> SeedVerdict:
        """One baseline/clean/chaos triple, judged against the invariants."""
        cfg = self.config
        violations: list[str] = []

        def record_violation(message: str) -> None:
            violations.append(message)

        baseline = RescueSimulator(
            self.scenario,
            list(self.requests),
            self._make_dispatcher(seed),
            self._sim_config(seed),
        ).run()

        clean_report = self._service(seed, with_faults=False).run()
        equivalence_ok = results_bit_identical(baseline, clean_report.result)
        if not equivalence_ok:
            record_violation(
                f"seed {seed}: clean service run diverged from the plain "
                f"engine run (served {clean_report.result.num_served} "
                f"vs {baseline.num_served})"
            )
        if not clean_report.all_ticks_completed:
            record_violation(
                f"seed {seed}: clean run skipped ticks "
                f"({clean_report.ticks_completed}/{clean_report.ticks_expected})"
            )

        chaos_service = self._service(seed, with_faults=True)
        no_escape = True
        try:
            chaos_report = chaos_service.run()
        except Exception as exc:  # repro: allow-broad-except -- chaos invariant: record the escape as a violation, never crash the harness
            no_escape = False
            record_violation(
                f"seed {seed}: exception escaped the service under chaos "
                f"({type(exc).__name__}: {exc})"
            )
            logger.exception("chaos run escaped for seed %d", seed)
            chaos_report = ServiceReport(
                result=SimulationResult(
                    dispatcher_name="(crashed)",
                    config=self._sim_config(seed),
                    requests=[],
                ),
                ticks_expected=chaos_service.expected_ticks(),
                ticks_completed=chaos_service.ticks_completed,
                incidents=chaos_service.incidents,
                incidents_dropped=chaos_service.incidents_dropped,
                predictor_breaker=chaos_service.predictor_breaker.snapshot(),
                policy_breaker=chaos_service.policy_breaker.snapshot(),
                ingest=chaos_service.ingest_guard.stats(),
                policy_fallback_cycles=0,
                predictor_fallback_serves=0,
            )

        ticks_ok = chaos_report.all_ticks_completed
        if no_escape and not ticks_ok:
            record_violation(
                f"seed {seed}: chaos run skipped ticks "
                f"({chaos_report.ticks_completed}/{chaos_report.ticks_expected})"
            )

        clean_served = baseline.num_served
        chaos_served = chaos_report.result.num_served
        degradation_ok = True
        if no_escape and clean_served > 0:
            degradation_ok = (
                chaos_served * cfg.degradation_factor >= clean_served
            )
            if not degradation_ok:
                record_violation(
                    f"seed {seed}: chaos served {chaos_served} < "
                    f"{clean_served}/{cfg.degradation_factor:g} "
                    f"(clean served {clean_served})"
                )

        verdict = SeedVerdict(
            seed=seed,
            clean_served=clean_served,
            chaos_served=chaos_served,
            equivalence_ok=equivalence_ok,
            ticks_ok=ticks_ok,
            no_escape=no_escape,
            degradation_ok=degradation_ok,
            violations=violations,
            clean_summary=clean_report.summary(),
            chaos_summary=chaos_report.summary(),
        )
        logger.info(
            "chaos seed %d: %s (clean served %d, chaos served %d, "
            "%d violations)",
            seed,
            "OK" if verdict.ok else "VIOLATED",
            clean_served,
            chaos_served,
            len(violations),
        )
        return verdict

    def run(self, progress=None) -> dict[str, object]:
        """All seeds; returns the JSON-ready campaign report."""
        cfg = self.config
        verdicts = []
        for seed in cfg.seeds:
            if progress:
                progress(f"chaos triple for seed {seed} under {cfg.profile!r}...")
            verdicts.append(self.run_seed(seed))
        report = {
            "profile": cfg.profile,
            "seeds": list(cfg.seeds),
            "population_size": cfg.population_size,
            "num_teams": cfg.num_teams,
            "window_days": cfg.window_days,
            "degradation_factor": cfg.degradation_factor,
            "ok": all(v.ok for v in verdicts),
            "violations": [m for v in verdicts for m in v.violations],
            "runs": [v.as_json() for v in verdicts],
        }
        return report


def run_chaos(
    config: ChaosConfig | None = None,
    out_path: str | None = None,
    progress=None,
) -> dict[str, object]:
    """Run a chaos campaign; optionally persist the report atomically."""
    report = ChaosHarness(config).run(progress=progress)
    if out_path is not None:
        atomic_write_json(out_path, report)
    return report

"""The unified service-health report: breakers, quarantine, incidents.

One shape, three producers.  A :func:`build_service_report` payload
carries the service's observable health — circuit-breaker snapshots,
per-shard quarantine reason counts, the bounded incident rings, and
(when sharded) the supervisor's failover digest — and can be built
directly from live components or *extracted* from a chaos campaign or
loadgen artifact that already embeds the same sections.  The CLI's
``repro service-report`` subcommand renders either source as JSON
(through the atomic artifact layer) or as text.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.core.artifacts import atomic_write_json

SERVICE_REPORT_FORMAT = "repro-service-report"
SERVICE_REPORT_VERSION = 1


def build_service_report(
    source: str,
    ingest: dict[str, Any],
    breakers: dict[str, dict[str, Any]] | None = None,
    incidents: list[dict[str, Any]] | None = None,
    incident_kinds: dict[str, int] | None = None,
    supervisor: dict[str, Any] | None = None,
    training: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the unified report payload from its sections."""
    per_shard = ingest.get("per_shard")
    shard_reasons: list[dict[str, Any]] = []
    if isinstance(per_shard, list):
        for row in per_shard:
            if isinstance(row, dict):
                shard_reasons.append(
                    {
                        "shard": row.get("shard"),
                        "alive": row.get("alive", True),
                        "rejected_by_reason": dict(
                            sorted(
                                (row.get("rejected_by_reason") or {}).items()
                            )
                        ),
                        "quarantine_kept": row.get("quarantine_kept", 0),
                        "quarantine_dropped": row.get("quarantine_dropped", 0),
                    }
                )
    return {
        "format": SERVICE_REPORT_FORMAT,
        "version": SERVICE_REPORT_VERSION,
        "date": datetime.date.today().isoformat(),
        "source": source,
        "ingest": ingest,
        "quarantine_by_shard": shard_reasons,
        "breakers": breakers or {},
        "incidents": incidents or [],
        "incident_kinds": dict(sorted((incident_kinds or {}).items())),
        "supervisor": supervisor or {},
        "training": training or {},
    }


def _first_run(campaign: dict[str, Any]) -> dict[str, Any] | None:
    runs = campaign.get("runs")
    if isinstance(runs, list) and runs and isinstance(runs[0], dict):
        return runs[0]
    return None


def extract_service_report(payload: dict[str, Any]) -> dict[str, Any]:
    """Pull the unified report out of a chaos campaign or loadgen artifact.

    Chaos campaigns carry per-seed run summaries; the report reflects
    the *first* seed's chaos run (the shape is identical across seeds —
    the point is the sections, not the aggregate).  Loadgen artifacts
    map their per-shard rows and supervisor digest directly.
    """
    if payload.get("format") == LOADGEN_FORMAT_NAME:
        ingest = {
            "accepted": payload.get("totals", {}).get("accepted", 0),
            "shed": payload.get("totals", {}).get("shed", 0),
            "rejected_total": payload.get("totals", {}).get("quarantined", 0),
            "lost": payload.get("totals", {}).get("lost", 0),
            "per_shard": payload.get("per_shard", []),
        }
        return build_service_report(
            source="loadgen",
            ingest=ingest,
            supervisor=payload.get("supervisor") or {},
        )
    if payload.get("format") == TRAIN_FORENSICS_FORMAT_NAME:
        anomalies = payload.get("anomalies") or []
        kinds: dict[str, int] = {}
        for anomaly in anomalies:
            if isinstance(anomaly, dict):
                kind = str(anomaly.get("kind", "?"))
                kinds[kind] = kinds.get(kind, 0) + 1
        return build_service_report(
            source="train-forensics",
            ingest={},
            incidents=list(anomalies),
            incident_kinds=kinds,
            training={
                "aborted": True,
                "reason": payload.get("reason"),
                "seed": payload.get("seed"),
                "level": payload.get("level"),
                "lr_scale": payload.get("lr_scale"),
                "recoveries": payload.get("recoveries") or [],
            },
        )
    run = _first_run(payload)
    if run is None:
        raise ValueError(
            "input is neither a loadgen artifact nor a chaos campaign report"
        )
    if str(payload.get("profile", "")).startswith("train-"):
        return build_service_report(
            source=f"chaos:{payload['profile']}",
            ingest={},
            incidents=run.get("anomalies") or [],
            incident_kinds=run.get("anomaly_kinds") or {},
            training={
                "profile": payload["profile"],
                "applied_faults": run.get("applied_count", 0),
                "recoveries": run.get("recoveries") or [],
                "aborted": run.get("aborted", False),
                "clean_identical": run.get("clean_identical"),
                "committed_checkpoints": run.get("committed_checkpoints", 0),
            },
        )
    summary = run.get("chaos") or run.get("clean") or {}
    return build_service_report(
        source=f"chaos:{payload.get('profile', '?')}",
        ingest=summary.get("ingest") or {},
        breakers={
            "predictor": summary.get("predictor_breaker") or {},
            "policy": summary.get("policy_breaker") or {},
        },
        incident_kinds=summary.get("service_incident_kinds") or {},
        supervisor=summary.get("supervisor") or {},
    )


#: The loadgen format name, duplicated here to keep this module import-
#: light (report extraction must not pull numpy via the loadgen module).
LOADGEN_FORMAT_NAME = "repro-loadgen"

#: Same deal for the training forensics bundle's ``incidents.json``
#: (``repro.training.loop.FORENSICS_FORMAT``).
TRAIN_FORENSICS_FORMAT_NAME = "repro-train-forensics"


def format_service_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of the unified report."""
    lines = [
        f"repro service-report — {report['date']}  (source: {report['source']})"
    ]
    breakers = report.get("breakers") or {}
    for name in sorted(breakers):
        snap = breakers[name]
        if not snap:
            continue
        lines.append(
            f"  breaker {name}: state={snap.get('state', '?')} "
            f"failures={snap.get('failures', 0)} trips={snap.get('trips', 0)}"
        )
    ingest = report.get("ingest") or {}
    if ingest:
        lines.append(
            f"  ingest: accepted={ingest.get('accepted', 0):,} "
            f"shed={ingest.get('shed', 0):,} "
            f"rejected={ingest.get('rejected_total', 0):,} "
            f"lost={ingest.get('lost', 0):,}"
        )
    for row in report.get("quarantine_by_shard") or []:
        reasons = row.get("rejected_by_reason") or {}
        reason_text = (
            ", ".join(f"{reason}={count}" for reason, count in sorted(reasons.items()))
            or "clean"
        )
        alive = "up" if row.get("alive", True) else "DOWN"
        lines.append(f"  shard {row.get('shard')} [{alive}]: {reason_text}")
    kinds = report.get("incident_kinds") or {}
    if kinds:
        lines.append(
            "  incidents: "
            + ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        )
    training = report.get("training") or {}
    if training:
        if "profile" in training:
            lines.append(
                f"  training chaos [{training['profile']}]: "
                f"faults={training.get('applied_faults', 0)} "
                f"recoveries={len(training.get('recoveries') or [])} "
                f"aborted={training.get('aborted', False)} "
                f"clean_identical={training.get('clean_identical')} "
                f"checkpoints={training.get('committed_checkpoints', 0)}"
            )
        else:
            lines.append(
                f"  training forensics: reason={training.get('reason', '?')} "
                f"seed={training.get('seed')} level={training.get('level')} "
                f"lr_scale={training.get('lr_scale')} "
                f"recoveries={len(training.get('recoveries') or [])}"
            )
    supervisor = report.get("supervisor") or {}
    if supervisor:
        lines.append(
            f"  supervisor: failovers={len(supervisor.get('failovers') or [])} "
            f"rebalances={len(supervisor.get('rebalances') or [])} "
            f"max_uncovered={supervisor.get('max_uncovered_cycles', 0)} "
            f"within_budget={supervisor.get('within_failover_budget', True)}"
        )
    return "\n".join(lines)


def write_service_report(report: dict[str, Any], out_path: str) -> None:
    """Persist the unified report atomically."""
    atomic_write_json(out_path, report)

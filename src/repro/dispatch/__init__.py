"""Dispatching policies.

``Dispatcher`` is the interface the simulator drives.  Implementations:

* :class:`repro.core.rl_dispatcher.MobiRescueDispatcher` — the paper's
  system (SVM prediction + RL policy, < 0.5 s computation delay);
* :class:`repro.dispatch.schedule.ScheduleDispatcher` — "Schedule" [5]:
  on-demand integer-programming assignment for normal situations (~300 s
  computation delay, no flood awareness);
* :class:`repro.dispatch.rescue_ts.RescueTsDispatcher` — "Rescue" [8]:
  time-series demand prediction + periodic integer programming (~300 s
  computation delay);
* :class:`repro.dispatch.nearest.NearestDispatcher` — greedy
  nearest-request baseline used for sanity checks and ablations.
"""

from repro.dispatch.base import (
    DispatchObservation,
    Dispatcher,
    TeamCommand,
    TeamView,
    command_depot,
    command_segment,
)
from repro.dispatch.nearest import NearestDispatcher
from repro.dispatch.schedule import ScheduleDispatcher

# Package-level mutuality with repro.sim (rescue_ts reads RescueRequest,
# the sim engine drives dispatchers); module-level acyclic — both sides
# import leaf submodules only, never package attributes mid-init.
# repro: allow-layering -- package-init cycle is benign at module level
from repro.dispatch.rescue_ts import RescueTsDispatcher

__all__ = [
    "DispatchObservation",
    "Dispatcher",
    "NearestDispatcher",
    "RescueTsDispatcher",
    "ScheduleDispatcher",
    "TeamCommand",
    "TeamView",
    "command_depot",
    "command_segment",
]

"""Dispatcher interface and observation/action types.

Every dispatching period (5 minutes in the paper) the simulator hands the
dispatcher an observation — team snapshots, called-in pending requests per
segment, the operable network — and receives a command per team: drive to a
destination road segment, or return to the depot (the team's nearest
hospital) to stand by.  That is exactly the paper's action space (Eq. 4):
``x_mk = e_j`` or ``x_mk = 0``.

Commands take effect after the dispatcher's *computation delay* — the lever
behind the paper's Fig. 13: the integer-programming baselines take ~300 s
to solve, the trained RL model answers in < 0.5 s.
"""

from __future__ import annotations

import abc
import logging
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hospitals.hospitals import Hospital
from repro.roadnet.graph import RoadNetwork

if TYPE_CHECKING:  # avoid a circular import: sim.engine imports this module
    from repro.sim.requests import RescueRequest


@dataclass(frozen=True)
class TeamView:
    """Read-only team snapshot exposed to dispatchers."""

    team_id: int
    node: int
    state: str
    capacity_left: int
    assignable: bool
    #: Lifetime pickups by this team (reward feedback for learning policies).
    total_pickups: int = 0
    #: Destination segment of the current leg, when driving to one.
    target_segment: int | None = None


@dataclass
class DispatchObservation:
    """What the dispatch center can see at one dispatching period."""

    t_s: float
    teams: list[TeamView]
    #: Called-in, not-yet-picked-up requests per road segment.
    pending: dict[int, int]
    #: Segments currently destroyed/submerged (the complement of G̃).
    closed: frozenset[int]
    network: RoadNetwork
    hospitals: list[Hospital]

    def assignable_teams(self) -> list[TeamView]:
        return [t for t in self.teams if t.assignable]


@dataclass(frozen=True)
class TeamCommand:
    """One team's order: drive to ``segment_id``, or depot when ``None``."""

    segment_id: int | None

    @property
    def is_depot(self) -> bool:
        return self.segment_id is None


def command_segment(segment_id: int) -> TeamCommand:
    return TeamCommand(segment_id=segment_id)


def command_depot() -> TeamCommand:
    return TeamCommand(segment_id=None)


class Dispatcher(abc.ABC):
    """Base class for dispatching policies."""

    #: Wall-clock the method needs to produce guidance (paper Section V-C3).
    computation_delay_s: float = 0.0
    name: str = "dispatcher"
    #: Whether the method plans with the satellite flood feed (the operable
    #: network G̃).  Flood-unaware methods plan on the full network; their
    #: teams discover destroyed segments by driving into them and stall
    #: until re-dispatched — the paper's "waste time on routes with
    #: unavailable road segments".
    flood_aware: bool = True

    @abc.abstractmethod
    def dispatch(self, obs: DispatchObservation) -> dict[int, TeamCommand]:
        """Commands keyed by team id.  Teams without an entry keep doing
        whatever they were doing."""

    def observe_requests(self, requests: "list[RescueRequest]") -> None:
        """Hook: the simulator reports newly called-in requests.

        History-based methods (the "Rescue" baseline's time series, online
        RL training) accumulate these; the default is to ignore them.
        """

    def on_cycle_end(self, obs: DispatchObservation) -> None:
        """Hook invoked after commands are applied; used by learning
        dispatchers for online training.  Default: no-op."""


class DispatchGuard:
    """Defensive wrapper around one dispatcher's cycle calls.

    The dispatch center is software running inside a disaster: it can
    crash, and an overloaded solver can blow its compute budget.  Neither
    may abort the rescue operation.  The guard converts both failure
    modes into a *fallback activation*: the cycle yields no new commands
    (teams retain their current orders, idle teams hold position) and the
    incident is reported to the caller instead of propagating.

    ``budget_s`` is a wall-clock bound on one ``dispatch`` call; ``None``
    disables the budget check.  Hook calls (``observe_requests``,
    ``on_cycle_end``) are guarded too — a learning dispatcher whose
    training step diverges must not take the simulation down with it.

    ``clock`` overrides the budget's time source (default: the process
    wall clock).  The online dispatch service passes a deterministic
    clock here so per-stage deadline slices can be enforced — and
    tested — without real elapsed time; see ``repro.service.deadline``.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        budget_s: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError("compute budget must be positive (or None to disable)")
        self.dispatcher = dispatcher
        self.budget_s = budget_s
        #: The budget's time source.  The default *measures* the solver's
        #: wall clock against its compute budget; the measurement never
        #: feeds back into simulation state.
        self._clock = clock if clock is not None else time.perf_counter
        self.fallback_count = 0
        self.hook_error_count = 0
        self._log = logging.getLogger("repro.dispatch.guard")

    def dispatch(
        self, obs: DispatchObservation
    ) -> tuple[dict[int, TeamCommand], str | None]:
        """One guarded cycle: ``(commands, incident)``.

        ``incident`` is ``None`` on success, otherwise a short description
        of why the fallback policy was activated (and ``commands`` is
        empty).
        """
        t_s = getattr(obs, "t_s", float("nan"))
        start = self._clock()
        try:
            action = self.dispatcher.dispatch(obs)
        except Exception as exc:  # repro: allow-broad-except -- the guard's job
            self.fallback_count += 1
            incident = f"dispatcher raised {type(exc).__name__}: {exc}"
            self._log.warning("t=%.0f %s; fallback policy active", t_s, incident)
            return {}, incident
        elapsed = self._clock() - start
        if self.budget_s is not None and elapsed > self.budget_s:
            self.fallback_count += 1
            incident = (
                f"dispatcher exceeded compute budget ({elapsed:.3f}s > {self.budget_s:.3f}s)"
            )
            self._log.warning("t=%.0f %s; commands discarded", t_s, incident)
            return {}, incident
        return action, None

    def observe_requests(self, requests: "list[RescueRequest]") -> str | None:
        try:
            self.dispatcher.observe_requests(requests)
            return None
        except Exception as exc:  # repro: allow-broad-except -- guarded hook
            self.hook_error_count += 1
            incident = f"observe_requests raised {type(exc).__name__}: {exc}"
            self._log.warning("%s; ignored", incident)
            return incident

    def on_cycle_end(self, obs: DispatchObservation) -> str | None:
        try:
            self.dispatcher.on_cycle_end(obs)
            return None
        except Exception as exc:  # repro: allow-broad-except -- guarded hook
            self.hook_error_count += 1
            incident = f"on_cycle_end raised {type(exc).__name__}: {exc}"
            self._log.warning("%s; ignored", incident)
            return incident

"""The "Rescue" baseline — Huang et al. [8].

Rescue-team dispatching for catastrophic situations based on time-series
demand prediction:

* predicts the request demand of each road segment at the current hour as
  the weighted average of the demand observed at this hour over several
  previous days (recent days weigh more);
* periodically solves an assignment IP minimizing total driving delay to
  the predicted (plus called-in) demand;
* considers no disaster-related factors, so its predictions miss where the
  danger actually is (the paper's explanation for Figs. 15-16);
* like Schedule, it is flood-unaware in its cost estimates, keeps all
  teams serving, and pays the ~300 s IP computation delay.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.dispatch.assignment import expand_demand_slots, solve_assignment
from repro.dispatch.base import (
    DispatchObservation,
    Dispatcher,
    TeamCommand,
    command_segment,
)
from repro.dispatch.standby import standby_segments
from repro.roadnet.matrix import travel_time_oracle
from repro.sim.requests import RescueRequest
from repro.weather.storms import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TimeSeriesDemandPredictor:
    """Per-segment hour-of-day demand from weighted historical averages."""

    def __init__(self, num_days: int = 5, decay: float = 0.7, hour_window: int = 4) -> None:
        if num_days < 1:
            raise ValueError("num_days must be positive")
        if not (0.0 < decay <= 1.0):
            raise ValueError("decay must be in (0, 1]")
        if hour_window < 0:
            raise ValueError("hour_window must be non-negative")
        self.num_days = int(num_days)
        self.decay = float(decay)
        self.hour_window = int(hour_window)
        #: counts[(day, hour_of_day)][segment] = observed requests
        self._counts: dict[tuple[int, int], dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    def record(self, t_s: float, segment_id: int) -> None:
        day = int(t_s // SECONDS_PER_DAY)
        hour = int((t_s % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        self._counts[(day, hour)][segment_id] += 1

    def predict(self, t_s: float) -> dict[int, float]:
        """Predicted demand per segment for the hour containing ``t``."""
        day = int(t_s // SECONDS_PER_DAY)
        hour = int((t_s % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        demand: dict[int, float] = defaultdict(float)
        weight_sum = 0.0
        # Per-segment requests are sparse, so the hour-of-day lookup uses a
        # small window around the current hour.
        hours = [
            h for h in range(hour - self.hour_window, hour + self.hour_window + 1)
            if 0 <= h < 24
        ]
        for age in range(1, self.num_days + 1):
            w = self.decay ** (age - 1)
            weight_sum += w
            for h in hours:
                for seg, n in self._counts.get((day - age, h), {}).items():
                    demand[seg] += w * n
        if weight_sum == 0.0:
            return {}
        return {seg: v / weight_sum for seg, v in demand.items() if v > 0}


class RescueTsDispatcher(Dispatcher):
    """Time-series prediction + IP dispatcher for disasters."""

    name = "Rescue"
    flood_aware = False

    def __init__(
        self,
        computation_delay_s: float = 300.0,
        team_capacity: int = 5,
        num_days: int = 5,
        decay: float = 0.7,
    ) -> None:
        if team_capacity < 1:
            raise ValueError("team_capacity must be positive")
        self.computation_delay_s = float(computation_delay_s)
        self.team_capacity = int(team_capacity)
        self.predictor = TimeSeriesDemandPredictor(num_days=num_days, decay=decay)
        #: Per-segment binary "demand predicted here" flags of the last
        #: prediction, kept for the Fig 15/16 accuracy comparison.
        self.last_prediction: dict[int, float] = {}

    def observe_requests(self, requests: list[RescueRequest]) -> None:
        for req in requests:
            self.predictor.record(req.time_s, req.segment_id)

    def seed_history(self, requests: list[RescueRequest]) -> None:
        """Load pre-window request history (the previous disaster days)."""
        self.observe_requests(requests)

    def dispatch(self, obs: DispatchObservation) -> dict[int, TeamCommand]:
        oracle = travel_time_oracle(obs.network)
        teams = obs.assignable_teams()
        if not teams:
            return {}

        predicted = self.predictor.predict(obs.t_s)
        self.last_prediction = dict(predicted)
        demand: dict[int, float] = defaultdict(float)
        for seg, n in obs.pending.items():
            demand[seg] += float(n)
        for seg, v in predicted.items():
            demand[seg] += v
        slots = expand_demand_slots(dict(demand), self.team_capacity, max_slots=len(teams))
        # IP solve time grows with demand; Rescue covers predicted demand on
        # top of the called-in requests, so its programs are bigger and
        # slower than Schedule's (the paper's Fig 13 ordering).
        self.computation_delay_s = float(min(600.0, 240.0 + 20.0 * len(slots)))

        commands: dict[int, TeamCommand] = {}
        assigned: set[int] = set()
        if slots:
            cost = np.vstack([oracle.node_to_segments_s(t.node, slots) for t in teams])
            for r, c in solve_assignment(cost):
                commands[teams[r].team_id] = command_segment(slots[c])
                assigned.add(teams[r].team_id)

        standby = standby_segments(obs.network, obs.hospitals)
        k = 0
        for t in teams:
            if t.team_id in assigned:
                continue
            commands[t.team_id] = command_segment(standby[k % len(standby)])
            k += 1
        return commands

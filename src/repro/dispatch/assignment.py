"""Team-to-site assignment solvers for the IP baselines.

Both comparison methods ("Schedule" [5] and "Rescue" [8]) periodically
solve an integer program that assigns rescue teams to demand sites
minimizing total driving delay.  Demand sites with more waiting people than
one team can carry are expanded into multiple capacity-sized slots, which
reduces the problem to a rectangular min-cost bipartite assignment.

Two solvers are provided: an explicit binary integer program through
scipy's HiGHS ``milp`` (faithful to the baselines' formulation) and the
Hungarian algorithm (``linear_sum_assignment``), which solves the same
relaxation-exact problem orders of magnitude faster.  They return identical
objective values (asserted in tests); simulations default to the fast one
and model the baselines' 300-second solve times as the dispatcher's
computation delay instead of actually burning wall-clock.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import LinearConstraint, linear_sum_assignment, milp


def expand_demand_slots(
    demand: dict[int, float], capacity: int, max_slots: int | None = None
) -> list[int]:
    """Expand per-segment demand into capacity-sized slots.

    Returns a list of segment ids, one per slot, largest demand first, e.g.
    demand {7: 12} with capacity 5 yields [7, 7, 7].
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    slots: list[int] = []
    for seg, d in sorted(demand.items(), key=lambda kv: -kv[1]):
        if d <= 0:
            continue
        slots.extend([seg] * int(math.ceil(d / capacity)))
    return slots if max_slots is None else slots[:max_slots]


def solve_assignment(cost: np.ndarray) -> list[tuple[int, int]]:
    """Min-cost assignment via the Hungarian algorithm.

    ``cost`` is (teams, slots); returns (team_row, slot_col) pairs.  When
    teams outnumber slots, surplus teams stay unassigned, and vice versa.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    if cost.size == 0:
        return []
    rows, cols = linear_sum_assignment(cost)
    return [(int(r), int(c)) for r, c in zip(rows, cols)]


def solve_assignment_milp(cost: np.ndarray) -> list[tuple[int, int]]:
    """The same assignment as an explicit binary integer program (HiGHS).

    min sum c_ij x_ij
    s.t. each team serves at most one slot, each slot gets at most one team,
         and exactly min(teams, slots) assignments are made.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError("cost must be a 2-D matrix")
    n_teams, n_slots = cost.shape
    if cost.size == 0:
        return []
    n = n_teams * n_slots

    def var(i: int, j: int) -> int:
        return i * n_slots + j

    constraints = []
    for i in range(n_teams):
        a = np.zeros(n)
        a[[var(i, j) for j in range(n_slots)]] = 1.0
        constraints.append(LinearConstraint(a, 0, 1))
    for j in range(n_slots):
        a = np.zeros(n)
        a[[var(i, j) for i in range(n_teams)]] = 1.0
        constraints.append(LinearConstraint(a, 0, 1))
    total = min(n_teams, n_slots)
    constraints.append(LinearConstraint(np.ones(n), total, total))

    res = milp(
        c=cost.ravel(),
        constraints=constraints,
        integrality=np.ones(n),
        bounds=None,
    )
    if res.status != 0 or res.x is None:
        raise RuntimeError(f"milp failed: {res.message}")
    x = np.round(res.x).reshape(n_teams, n_slots)
    return [(int(i), int(j)) for i, j in zip(*np.nonzero(x > 0.5))]

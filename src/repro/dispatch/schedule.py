"""The "Schedule" baseline — Van den Berg et al. [5].

On-demand integer-programming dispatch for *normal* situations:

* reacts only to already-called-in requests (no prediction);
* solves an assignment IP minimizing total driving delay each period;
* is flood-unaware: its cost matrix uses free-flow travel times on the
  *full* road network, so its estimates are wrong wherever segments are
  destroyed (paper: "Schedule does not consider the real-time road network
  connection status ... which causes the emergency vehicles to waste time
  on routes with unavailable road segments");
* keeps every surplus team posted at a standby segment, so its number of
  serving teams is constant (Fig. 14);
* carries the paper's ~300 s IP computation delay.
"""

from __future__ import annotations

import numpy as np

from repro.dispatch.assignment import expand_demand_slots, solve_assignment
from repro.dispatch.base import (
    DispatchObservation,
    Dispatcher,
    TeamCommand,
    command_segment,
)
from repro.dispatch.standby import standby_segments
from repro.roadnet.matrix import travel_time_oracle


class ScheduleDispatcher(Dispatcher):
    """On-demand IP dispatcher for normal situations."""

    name = "Schedule"
    flood_aware = False

    def __init__(self, computation_delay_s: float = 300.0, team_capacity: int = 5) -> None:
        if team_capacity < 1:
            raise ValueError("team_capacity must be positive")
        self.computation_delay_s = float(computation_delay_s)
        self.team_capacity = int(team_capacity)

    def dispatch(self, obs: DispatchObservation) -> dict[int, TeamCommand]:
        oracle = travel_time_oracle(obs.network)
        teams = obs.assignable_teams()
        if not teams:
            return {}

        demand = {seg: float(n) for seg, n in obs.pending.items() if n > 0}
        slots = expand_demand_slots(demand, self.team_capacity, max_slots=len(teams))
        # The IP's solve time grows with the demand it covers (paper Section
        # V-C3: "the computation time varies under different amounts of
        # request demands").
        self.computation_delay_s = float(min(600.0, 240.0 + 20.0 * len(slots)))

        commands: dict[int, TeamCommand] = {}
        assigned: set[int] = set()
        if slots:
            cost = np.vstack([oracle.node_to_segments_s(t.node, slots) for t in teams])
            for r, c in solve_assignment(cost):
                commands[teams[r].team_id] = command_segment(slots[c])
                assigned.add(teams[r].team_id)

        # Surplus teams hold standby positions — always serving.
        standby = standby_segments(obs.network, obs.hospitals)
        k = 0
        for t in teams:
            if t.team_id in assigned:
                continue
            commands[t.team_id] = command_segment(standby[k % len(standby)])
            k += 1
        return commands

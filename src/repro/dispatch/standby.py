"""Standby coverage positions for the baseline dispatchers.

Van den Berg et al. [5] deploy emergency vehicles at standby locations
covering the city; our baselines keep surplus teams posted at the segments
adjacent to each hospital, round-robin.  Because surplus teams always hold
a *segment* command, the baselines' serving-team count stays constant —
exactly the paper's Fig. 14 observation (``Rescue = Schedule = const``).
"""

from __future__ import annotations

from repro.hospitals.hospitals import Hospital
from repro.roadnet.graph import RoadNetwork


def standby_segments(network: RoadNetwork, hospitals: list[Hospital]) -> list[int]:
    """One outgoing segment per hospital, deduplicated, stable order."""
    if not hospitals:
        raise ValueError("hospital list is empty")
    out: list[int] = []
    for h in hospitals:
        segs = network.out_segments(h.node_id)
        if not segs:
            continue
        sid = min(s.segment_id for s in segs)
        if sid not in out:
            out.append(sid)
    if not out:
        raise ValueError("no hospital has outgoing segments")
    return out

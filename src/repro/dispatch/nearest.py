"""Greedy nearest-request dispatcher.

Not in the paper's comparison set; a transparent sanity baseline used in
tests and ablations: every cycle, match assignable teams to pending-request
segments greedily by estimated travel time, and send everyone else to the
depot.
"""

from __future__ import annotations

import numpy as np

from repro.dispatch.base import (
    DispatchObservation,
    Dispatcher,
    TeamCommand,
    command_depot,
    command_segment,
)
from repro.roadnet.matrix import travel_time_oracle


class NearestDispatcher(Dispatcher):
    """Greedy nearest-pending-request assignment."""

    name = "Nearest"
    computation_delay_s = 1.0

    def dispatch(self, obs: DispatchObservation) -> dict[int, TeamCommand]:
        oracle = travel_time_oracle(obs.network)
        teams = obs.assignable_teams()
        commands: dict[int, TeamCommand] = {t.team_id: command_depot() for t in teams}
        remaining = {
            seg: n for seg, n in obs.pending.items() if seg not in obs.closed and n > 0
        }
        free = {t.team_id: t for t in teams}
        while remaining and free:
            # Globally closest (team, segment) pair first.
            best: tuple[float, int, int] | None = None
            segs = list(remaining)
            for t in free.values():
                times = oracle.node_to_segments_s(t.node, segs)
                j = int(np.argmin(times))
                if best is None or times[j] < best[0]:
                    best = (float(times[j]), t.team_id, segs[j])
            assert best is not None
            _, team_id, seg = best
            team = free.pop(team_id)
            commands[team_id] = command_segment(seg)
            remaining[seg] -= max(1, team.capacity_left)
            if remaining[seg] <= 0:
                del remaining[seg]
        return commands

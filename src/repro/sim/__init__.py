"""Rescue-dispatching simulator — the offline substitute for SUMO + Flow.

A discrete-time mesoscopic simulator: rescue teams (capacity-c vehicles)
drive edge-by-edge over the operable road network at flood-adjusted speeds,
pick up pending rescue requests on the segments they traverse, deliver to
hospitals, and are re-dispatched periodically by a pluggable dispatcher.
This preserves exactly what the paper's evaluation measures — travel times
on a closable network, request lifecycle, periodic re-dispatch — without
microscopic car-following dynamics, which are irrelevant to the dispatching
comparison.
"""

from repro.sim.requests import RescueRequest, requests_from_rescues
from repro.sim.teams import RescueTeam, TeamState
from repro.sim.engine import (
    IncidentEvent,
    RescueSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.metrics import SimulationMetrics

__all__ = [
    "IncidentEvent",
    "RescueRequest",
    "RescueSimulator",
    "RescueTeam",
    "SimulationConfig",
    "SimulationMetrics",
    "SimulationResult",
    "TeamState",
    "requests_from_rescues",
]

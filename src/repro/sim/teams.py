"""Rescue-team state machine.

A team is a capacity-c vehicle that is always in one of three states:

* ``IDLE`` — parked at a landmark (usually a hospital), awaiting dispatch;
* ``TO_SEGMENT`` — driving toward an assigned destination segment, picking
  up requests on traversed segments along the way;
* ``TO_HOSPITAL`` — carrying passengers to a hospital (still picking up en
  route while capacity remains); not re-assignable until delivery.

Movement is precomputed per leg: when a route is assigned, absolute node
arrival times are fixed from flood-adjusted segment speeds; the engine then
simply advances the team through nodes whose times have passed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.roadnet.routing import Route


class TeamState(enum.Enum):
    IDLE = "idle"
    TO_SEGMENT = "to_segment"
    TO_HOSPITAL = "to_hospital"


@dataclass
class RescueTeam:
    """Mutable state of one rescue team inside the simulator."""

    team_id: int
    capacity: int
    node: int
    state: TeamState = TeamState.IDLE
    passengers: list[int] = field(default_factory=list)  # request ids on board
    #: Active leg, when driving.
    route_nodes: tuple[int, ...] = ()
    route_segments: tuple[int, ...] = ()
    node_times: np.ndarray | None = None  # absolute arrival time per route node
    next_node_idx: int = 0
    target_segment: int | None = None
    leg_start_s: float = 0.0
    #: Deferred dispatcher decision, applied at the next node boundary.
    pending_assignment: "object | None" = None
    #: Lifetime pickup counter; learning dispatchers read its deltas as the
    #: served-requests part of their reward signal.
    total_pickups: int = 0
    #: When broken down (fault injection), the absolute time the repair
    #: completes; ``None`` while operational.
    down_until_s: float | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")

    @property
    def capacity_left(self) -> int:
        return self.capacity - len(self.passengers)

    @property
    def is_driving(self) -> bool:
        return self.state is not TeamState.IDLE

    @property
    def is_assignable(self) -> bool:
        """Dispatchers may (re)direct idle teams and teams en route to a
        segment; hospital runs finish first and broken-down teams cannot
        act on orders."""
        return self.state is not TeamState.TO_HOSPITAL and not self.is_down

    def begin_leg(
        self,
        route: Route,
        speed_multiplier: float,
        segment_times_s: np.ndarray,
        t_now: float,
        state: TeamState,
        target_segment: int | None,
    ) -> None:
        """Start driving ``route`` at ``t_now``.

        ``segment_times_s`` are flood-adjusted traversal times aligned with
        ``route.segment_ids``; ``speed_multiplier`` is recorded for metrics
        only.
        """
        if state is TeamState.IDLE:
            raise ValueError("a leg must target a segment or a hospital")
        if len(segment_times_s) != len(route.segment_ids):
            raise ValueError("segment_times_s must align with the route")
        if route.src != self.node:
            raise ValueError(
                f"route starts at {route.src} but team {self.team_id} is at {self.node}"
            )
        self.route_nodes = route.nodes
        self.route_segments = route.segment_ids
        self.node_times = np.concatenate([[t_now], t_now + np.cumsum(segment_times_s)])
        self.next_node_idx = 1
        self.state = state
        self.target_segment = target_segment
        self.leg_start_s = t_now

    @property
    def is_down(self) -> bool:
        """Broken down and awaiting repair (fault injection)."""
        return self.down_until_s is not None

    def break_down(self, repair_done_s: float) -> None:
        """The vehicle fails where it stands: the current leg is aborted
        (passengers stay on board, stranded) and the team is inoperable
        until ``repair_done_s``."""
        if self.is_driving:
            self.stop()
        self.down_until_s = float(repair_done_s)

    def repair(self) -> None:
        """Repair complete; the team is operational (and idle) again."""
        self.down_until_s = None

    def stop(self) -> None:
        """End the current leg (arrived, or ordered to stand by)."""
        self.route_nodes = ()
        self.route_segments = ()
        self.node_times = None
        self.next_node_idx = 0
        self.target_segment = None
        self.state = TeamState.IDLE

    @property
    def arrival_time_s(self) -> float | None:
        if self.node_times is None:
            return None
        return float(self.node_times[-1])

"""Rescue requests fed to the dispatching simulator.

Requests come from the mobility ground truth: each trapped person raises
one request at their request time, anchored to the road segment nearest
their trapped position (the paper simulates the appearance of rescue
requests from the Sep 16 mobility data the same way).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geo.flood import FloodModel
from repro.mobility.trace import RescueRecord
from repro.roadnet.graph import RoadNetwork
from repro.weather.storms import SECONDS_PER_HOUR


@dataclass(frozen=True)
class RescueRequest:
    """One person's pick-up request."""

    request_id: int
    person_id: int
    time_s: float
    segment_id: int
    node_id: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("request time must be non-negative")


def requests_from_rescues(
    rescues: list[RescueRecord], t0_s: float, t1_s: float
) -> list[RescueRequest]:
    """Requests whose call-in time falls inside [t0, t1), time-ordered."""
    if t1_s <= t0_s:
        raise ValueError("need t0 < t1")
    out = [
        RescueRequest(
            request_id=i,
            person_id=r.person_id,
            time_s=r.request_time_s,
            segment_id=r.trap_segment,
            node_id=r.trap_node,
        )
        for i, r in enumerate(
            sorted(
                (r for r in rescues if t0_s <= r.request_time_s < t1_s),
                key=lambda r: r.request_time_s,
            )
        )
    ]
    return out


def remap_to_operable(
    requests: list[RescueRequest],
    network: RoadNetwork,
    flood: FloodModel,
    max_candidates: int = 64,
) -> list[RescueRequest]:
    """Re-anchor each request to the nearest operable segment.

    A trapped person's own road segment is usually underwater — that is why
    they are trapped.  The pick-up point is the flood water's edge: the
    closest segment that is still drivable at the request's hour.  Requests
    for which no operable segment exists within ``max_candidates`` nearest
    keep their original anchor (and will simply wait for the flood to
    recede).
    """
    closed_cache: dict[int, frozenset[int]] = {}

    def closed_at(t_s: float) -> frozenset[int]:
        hour = int(t_s // SECONDS_PER_HOUR)
        if hour not in closed_cache:
            closed_cache[hour] = network.closed_segments(flood, hour * SECONDS_PER_HOUR)
        return closed_cache[hour]

    out: list[RescueRequest] = []
    for req in requests:
        closed = closed_at(req.time_s)
        if req.segment_id not in closed:
            out.append(req)
            continue
        node = network.landmark(req.node_id)
        candidates = network.nearest_segments(node.x, node.y, max_candidates)
        new_seg = next((s for s in candidates if s not in closed), req.segment_id)
        out.append(replace(req, segment_id=new_seg))
    return out

"""Metrics over a simulation run — the quantities of Figs. 9-14.

All per-hour series are indexed by hour-of-window (0..23 for the paper's
24-hour Sep 16 run).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.sim.engine import SimulationResult


class SimulationMetrics:
    """Derived measurements for one :class:`SimulationResult`."""

    def __init__(self, result: SimulationResult) -> None:
        self.result = result
        cfg = result.config
        self.t0 = cfg.t0_s
        self.num_hours = int(np.ceil((cfg.t1_s - cfg.t0_s) / 3_600.0))

    def _hour_of(self, t_s: float) -> int:
        return min(self.num_hours - 1, max(0, int((t_s - self.t0) // 3_600.0)))

    # -- Fig 9 / Fig 10: served requests ------------------------------------

    def timely_served_per_hour(self) -> np.ndarray:
        """Requests served within the timely window, per window hour."""
        out = np.zeros(self.num_hours)
        w = self.result.config.timely_window_s
        for p in self.result.pickups:
            if p.timeliness_s <= w:
                out[self._hour_of(p.t_s)] += 1
        return out

    def served_per_hour(self) -> np.ndarray:
        out = np.zeros(self.num_hours)
        for p in self.result.pickups:
            out[self._hour_of(p.t_s)] += 1
        return out

    def served_per_team(self) -> np.ndarray:
        """Timely served request count per team (Fig 10's CDF support),
        including teams that served none."""
        counts = np.zeros(self.result.config.num_teams)
        w = self.result.config.timely_window_s
        for p in self.result.pickups:
            if p.timeliness_s <= w:
                counts[p.team_id] += 1
        return counts

    @property
    def total_timely_served(self) -> int:
        w = self.result.config.timely_window_s
        return sum(1 for p in self.result.pickups if p.timeliness_s <= w)

    @property
    def service_rate(self) -> float:
        """Fraction of all requests that were picked up at all."""
        n = len(self.result.requests)
        return len(self.result.pickups) / n if n else 0.0

    # -- Fig 11 / Fig 12: driving delay ---------------------------------------

    def driving_delays(self) -> np.ndarray:
        """Driving delay of every served request, seconds (Fig 12 support)."""
        return np.array([p.driving_delay_s for p in self.result.pickups])

    def avg_delay_per_hour(self) -> np.ndarray:
        """Mean driving delay over requests served in each hour; hours with
        no service are NaN (plotted as gaps, like the paper's figures)."""
        sums = np.zeros(self.num_hours)
        counts = np.zeros(self.num_hours)
        for p in self.result.pickups:
            h = self._hour_of(p.t_s)
            sums[h] += p.driving_delay_s
            counts[h] += 1
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    # -- Fig 13: timeliness -------------------------------------------------------

    def timeliness_values(self) -> np.ndarray:
        """(rescue time - request time) for every served request (Fig 13)."""
        return np.array([p.timeliness_s for p in self.result.pickups])

    # -- Fig 14: serving teams ------------------------------------------------------

    def serving_teams_per_hour(self) -> np.ndarray:
        """Mean number of serving teams over the dispatch cycles of each
        hour (Fig 14)."""
        sums = np.zeros(self.num_hours)
        counts = np.zeros(self.num_hours)
        for t_s, n in self.result.serving_samples:
            h = self._hour_of(t_s)
            sums[h] += n
            counts[h] += 1
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    # -- degradation (fault injection / graceful-degradation paths) -----------

    def incident_counts(self) -> dict[str, int]:
        """Count of recorded degradation events by kind."""
        return dict(Counter(e.kind for e in self.result.incidents))

    @property
    def incidents_dropped(self) -> int:
        """Incidents shed once the bounded ring filled up — nonzero means
        the per-kind counts above undercount the oldest events."""
        return self.result.incidents_dropped

    @property
    def fallback_activations(self) -> int:
        """Dispatcher cycles that fell back to the safe no-op policy
        (exception, compute-budget overrun, or injected failure)."""
        return sum(1 for e in self.result.incidents if e.kind == "dispatcher_fallback")

    @property
    def dropped_commands(self) -> int:
        """Dispatch commands lost to radio outages."""
        return sum(1 for e in self.result.incidents if e.kind == "dropped_command")

    @property
    def breakdowns(self) -> int:
        """Vehicle breakdown events."""
        return sum(1 for e in self.result.incidents if e.kind == "breakdown")

    @property
    def reroutes(self) -> int:
        """Mid-leg detours around closed segments."""
        return sum(1 for e in self.result.incidents if e.kind == "reroute")

    # -- deliveries -----------------------------------------------------------------

    def delivered_count(self) -> int:
        return len(self.result.deliveries)

    def mean_request_to_delivery_s(self) -> float:
        """Average time from request to hospital delivery, over delivered
        requests."""
        req_time = {r.request_id: r.time_s for r in self.result.requests}
        waits = [d.t_s - req_time[d.request_id] for d in self.result.deliveries]
        return float(np.mean(waits)) if waits else float("nan")

"""Event-driven simulation kernel over structure-of-arrays team state.

The seed engine (:mod:`repro.sim.engine`) advances every team at every
fixed tick even when nothing happens.  This package replaces the inner
loop with a hybrid event-driven scheduler — a heap of next-arrival /
next-dispatch-cycle / next-request-activation / next-flood-front /
next-breakdown-repair events with deterministic ``(time, kind, team_id)``
tie-breaking — layered over numpy team-state columns, so only ticks where
something can happen are executed and per-tick team scans are vectorized.

The kernel is **bit-identical** to the seed loop: events are quantized to
the seed's tick grid and each processed tick runs the seed tick body, so
skipping a tick is only allowed when it is provably a no-op.  The
golden-equivalence suite (``tests/test_kernel_equivalence.py``) locks the
two paths together across seeds and fault profiles, and the scheduler /
``TeamArray`` property suites pin the data structures underneath.

Wiring follows the PR 4 router pattern: :func:`set_event_kernel_enabled`
flips a process-wide switch consulted by :func:`build_simulator`; the seed
``RescueSimulator.run`` loop is kept untouched as the reference path.
"""

from repro.sim.kernel.engine import (
    EventKernelSimulator,
    build_simulator,
    event_kernel_enabled,
    set_event_kernel_enabled,
)
from repro.sim.kernel.events import Event, EventHeap, EventKind
from repro.sim.kernel.state import RequestArray, TeamArray, TeamArrayView

__all__ = [
    "Event",
    "EventHeap",
    "EventKind",
    "EventKernelSimulator",
    "RequestArray",
    "TeamArray",
    "TeamArrayView",
    "build_simulator",
    "event_kernel_enabled",
    "set_event_kernel_enabled",
]

"""The event-driven simulation kernel.

:class:`EventKernelSimulator` subclasses the seed
:class:`~repro.sim.engine.RescueSimulator` and replaces its fixed-step
``run`` loop with an event heap, while every *processed* tick still runs
the seed tick body (the phase methods the seed ``run`` was refactored
into).  Bit-identity rests on one argument:

* Events are quantized to the seed's tick grid — the grid is rebuilt by
  replaying the seed's ``t += step_s`` float accumulation, and every
  event is keyed by an exact integer tick index.
* A grid tick is skipped only when it is provably a no-op: no request
  activates (the activation event sits at the first tick covering the
  next request), no dispatch cycle fires (likewise), no queued command
  falls due, no team's wake-up time has passed, and no breakdown window
  first covers it (trigger ticks are precomputed from the fault
  schedules — "reschedule rather than poll").
* Processed ticks run seed-identical code over the due teams in
  ascending team id — the seed's list order restricted to teams that do
  anything, which is the same mutation sequence because a team's tick
  body never mutates another team.

Over-eager wake-ups are therefore harmless (the tick body no-ops) and
the scheduler errs on that side; the golden-equivalence suite
(``tests/test_kernel_equivalence.py``) locks kernel and seed runs
together event-for-event across seeds and fault profiles.

The wiring mirrors the PR 4 routing-cache toggle:
:func:`set_event_kernel_enabled` flips a process-wide switch and
:func:`build_simulator` constructs whichever engine is selected, keeping
the seed loop alive as the golden reference path.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import TYPE_CHECKING, cast

import numpy as np

from repro.data.charlotte import CharlotteScenario
from repro.dispatch.base import DispatchObservation, Dispatcher, TeamCommand, TeamView
from repro.perf.routing_cache import Router
from repro.roadnet.routing import Route
from repro.sim.engine import PickupEvent, RescueSimulator, SimulationConfig, SimulationResult
from repro.sim.kernel.events import EventHeap, EventKind
from repro.sim.kernel.routing import (
    FloodClosureIndex,
    HospitalField,
    HospitalFieldCache,
    PrefilteredRouter,
)
from repro.sim.kernel.state import _NO_TARGET, RequestArray, TeamArray
from repro.sim.requests import RescueRequest
from repro.sim.teams import RescueTeam

if TYPE_CHECKING:  # the fault layer is optional; only the type is needed here
    from repro.faults.models import FaultInjector

_INF = float("inf")


class EventKernelSimulator(RescueSimulator):
    """Event-driven drop-in for :class:`RescueSimulator` (see module doc)."""

    def __init__(
        self,
        scenario: CharlotteScenario,
        requests: list[RescueRequest],
        dispatcher: Dispatcher,
        config: SimulationConfig,
        faults: "FaultInjector | None" = None,
        router: Router | None = None,
        on_cycle: Callable[[int, float, bool], None] | None = None,
    ) -> None:
        if router is None:
            # Same Dijkstra relax sequence as the seed router, on
            # adjacency prefiltered per closed set (per-sim, not the
            # process-wide cache: kernel runs are usually long).
            router = PrefilteredRouter(scenario.network)
        super().__init__(
            scenario, requests, dispatcher, config,
            faults=faults, router=router, on_cycle=on_cycle,
        )
        self._requests_arr = RequestArray(self.requests)
        self._flood_index = FloodClosureIndex(self.network, self.scenario.flood)
        self._fields = HospitalFieldCache(
            self.network, [h.node_id for h in self.hospitals]
        )
        self._field: HospitalField | None = None
        self._field_closed: frozenset[int] | None = None
        # The seed tick grid, replayed with the seed's own accumulated
        # float sum (NOT t0 + k*step — those differ in the last ulp).
        times: list[float] = []
        t = config.t0_s
        while t <= config.t1_s:
            times.append(t)
            t += config.step_s
        self._tick_times = np.array(times, dtype=np.float64)
        self._num_ticks = len(times)
        # Fault-closure boundaries: the closed set is piecewise constant
        # between window edges, so one cached frozenset serves the whole
        # interval (the "reschedule rather than poll" contract).
        bounds: set[float] = set()
        if self.faults is not None:
            for windows in self.faults.closure_windows().values():
                for w in windows:
                    bounds.add(w.start_s)
                    bounds.add(w.end_s)
        self._closure_bounds = np.array(sorted(bounds), dtype=np.float64)
        self._fault_closed_span: tuple[float, float, frozenset[int]] = (
            _INF, -_INF, frozenset(),
        )
        # Breakdown trigger ticks: the first grid tick each outage window
        # covers (windows falling wholly between ticks never trigger —
        # exactly the seed's per-tick ``covers`` poll).
        self._breakdown_triggers: dict[int, list[int]] = {}
        if self.faults is not None:
            for team_id in range(config.num_teams):
                for w in self.faults.breakdown_windows(team_id):
                    k = self._tick_of(w.start_s)
                    if k < self._num_ticks and float(self._tick_times[k]) < w.end_s:
                        self._breakdown_triggers.setdefault(k, []).append(team_id)
        self._events = EventHeap()
        self._wake_tokens: dict[int, int] = {}
        self._stream_tokens: dict[EventKind, tuple[int, int]] = {}
        self._processed = -1
        self._current_tick = -1
        self._ticks_run = 0

    @property
    def events_processed(self) -> int:
        """Events popped off the heap during the last :meth:`run`."""
        return self._events.popped

    @property
    def ticks_processed(self) -> int:
        """Grid ticks that actually ran (vs ``num_grid_ticks`` scheduled)."""
        return self._ticks_run

    @property
    def num_grid_ticks(self) -> int:
        return self._num_ticks

    # -- setup ----------------------------------------------------------------

    def _spawn_teams(self) -> list[RescueTeam]:
        """Seed placement (one sequential ``rng.choice`` per team), landing
        in :class:`TeamArray` columns instead of per-team objects."""
        nodes = [h.node_id for h in self.hospitals]
        spawn = [int(self._rng.choice(nodes)) for _ in range(self.config.num_teams)]
        self._team_array = TeamArray(self.config.team_capacity, spawn)
        # Views carry the full RescueTeam surface; the inherited seed tick
        # body runs on them unchanged.
        return cast(list[RescueTeam], self._team_array.views())

    # -- tick grid ------------------------------------------------------------

    def _tick_of(self, t_s: float) -> int:
        """Index of the first grid tick at or after ``t`` (== num_ticks
        when ``t`` falls beyond the window — never processed, as in the
        seed loop)."""
        return int(np.searchsorted(self._tick_times, t_s, side="left"))

    # -- closures -------------------------------------------------------------

    def _fault_closed_at(self, t: float) -> frozenset[int]:
        lo, hi, cached = self._fault_closed_span
        if lo <= t < hi:
            return cached
        faults = self.faults
        assert faults is not None
        closed = faults.closed_segments(t)
        bounds = self._closure_bounds
        i = int(np.searchsorted(bounds, t, side="right"))
        lo = float(bounds[i - 1]) if i > 0 else -_INF
        hi = float(bounds[i]) if i < len(bounds) else _INF
        self._fault_closed_span = (lo, hi, closed)
        return closed

    def _closed_now(self, t: float) -> frozenset[int]:
        closed = self._flood_index.closed_at(t)
        if self.faults is not None:
            extra = self._fault_closed_at(t)
            if extra:
                closed = frozenset(closed | extra)
        return closed

    # -- hospital routing -----------------------------------------------------

    def _current_field(self) -> HospitalField:
        if self._field is None or self._field_closed != self._closed:
            adjacency = None
            if isinstance(self.router, PrefilteredRouter):
                adjacency = self.router.adjacency(self._closed, reverse=True)
            self._field = self._fields.field(self._closed, adjacency=adjacency)
            self._field_closed = self._closed
        return self._field

    def _nearest_hospital_node(self, node: int) -> int | None:
        return self._current_field().nearest.get(node)

    def _hospital_leg_route(self, node: int, hosp: int) -> Route | None:
        # ``hosp`` is this field's nearest(node) by construction; the
        # field walk reconstructs the same shortest path the seed's
        # per-team search would (unique shortest paths; pinned by the
        # equivalence suite).
        return self._current_field().route(node)

    # -- request lifecycle ----------------------------------------------------

    def _take_due_requests(self, upto_t: float) -> list[RescueRequest]:
        newly = self._requests_arr.take_due(upto_t)
        self._activation_cursor = self._requests_arr.cursor
        return newly

    def _immediate_pickup(self, req: RescueRequest) -> None:
        seg = self.network.segment(req.segment_id)
        i = self._team_array.idle_team_at((seg.u, seg.v))
        if i is None:
            return
        team = self._teams[i]
        q = self._pending.get(req.segment_id)
        if not q or q[-1] is not req:
            return
        q.pop()
        self._result.pickups.append(
            PickupEvent(
                request_id=req.request_id,
                team_id=team.team_id,
                t_s=req.time_s,
                driving_delay_s=0.0,
                timeliness_s=0.0,
            )
        )
        team.passengers.append(req.request_id)
        team.total_pickups += 1
        if team.capacity_left == 0:
            self._route_to_hospital(team, req.time_s)

    # -- dispatch -------------------------------------------------------------

    def _observation(self, t: float) -> DispatchObservation:
        a = self._team_array
        assignable = (a.state_code != 2) & np.isnan(a.down_until_s)
        teams = [
            TeamView(
                team_id=i,
                node=int(a.node[i]),
                state=a.state[i].value,
                capacity_left=int(a.capacity_left[i]),
                assignable=bool(assignable[i]),
                total_pickups=int(a.total_pickups[i]),
                target_segment=(
                    None if a.target_segment[i] == _NO_TARGET
                    else int(a.target_segment[i])
                ),
            )
            for i in range(a.num_teams)
        ]
        return DispatchObservation(
            t_s=t,
            teams=teams,
            pending={s: len(q) for s, q in self._pending.items() if q},
            closed=self._closed,
            network=self.network,
            hospitals=self.hospitals,
        )

    def _serving_count(self, action: dict[int, TeamCommand]) -> int:
        serving = {tid for tid, c in action.items() if not c.is_depot}
        serving |= self._team_array.serving_ids()
        serving -= {tid for tid, c in action.items() if c.is_depot}
        return len(serving)

    def _apply_due_actions(self, t: float) -> None:
        n = self._team_array.num_teams
        while self._action_queue and self._action_queue[0][0] <= t:
            apply_t, _, action = heapq.heappop(self._action_queue)
            # Ascending command keys == the seed's ascending-team-id scan
            # restricted to commanded teams.
            for tid in sorted(action):
                if not 0 <= tid < n:
                    continue
                team = self._teams[tid]
                if not team.is_assignable:
                    continue
                self._deliver_command(team, action[tid], apply_t)

    # -- advancement ----------------------------------------------------------

    def _advance_teams(self, t: float) -> None:
        a = self._team_array
        due: list[int] = [int(i) for i in a.attention(t)]
        if self.faults is not None:
            triggers = self._breakdown_triggers.get(self._current_tick)
            if triggers:
                due = sorted(set(due).union(triggers))
        for i in due:
            team = self._teams[i]
            if self.faults is not None and self._update_breakdown(team, t):
                continue
            self._advance_team(team, t)

    # -- event scheduling -----------------------------------------------------

    def _schedule_stream(self, kind: EventKind, k: int) -> None:
        """(Re)schedule the single live event of a fleet-wide stream."""
        current = self._stream_tokens.get(kind)
        if current is not None:
            if current[1] == k:
                return  # already parked on that tick
            self._events.cancel(current[0])
            del self._stream_tokens[kind]
        if 0 <= k < self._num_ticks:
            self._stream_tokens[kind] = (self._events.schedule(k, kind), k)

    def _sync_wake_events(self) -> None:
        """Drain the dirty set: one wake event per team whose ``wake_s``
        moved.  A wake at or before the current tick is pushed to the next
        grid tick — the seed would touch that team next tick too (it broke
        out of its advance loop mid-tick)."""
        a = self._team_array
        if not a.dirty:
            return
        events = self._events
        down = a.down_until_s
        for i in sorted(a.dirty):
            token = self._wake_tokens.pop(i, None)
            if token is not None:
                events.cancel(token)
            wake = float(a.wake_s[i])
            if wake == _INF:
                continue
            k = self._tick_of(wake) if wake > -_INF else 0
            k = max(k, self._processed + 1)
            if k >= self._num_ticks:
                continue
            kind = EventKind.REPAIR if down[i] == down[i] else EventKind.ARRIVAL
            self._wake_tokens[i] = events.schedule(k, kind, i)
        a.dirty.clear()

    # -- main loop ------------------------------------------------------------

    def _run_tick(self, t: float, k: int) -> None:
        """The seed tick body, phase for phase."""
        self._current_tick = k
        self._ticks_run += 1
        self._activate_requests(t)
        if t >= self._next_dispatch:
            self._dispatch_cycle(t)
        self._apply_due_actions(t)
        self._advance_teams(t)
        next_req = self._requests_arr.next_time()
        self._schedule_stream(
            EventKind.REQUEST_ACTIVATION,
            self._num_ticks if next_req is None else self._tick_of(next_req),
        )
        self._schedule_stream(
            EventKind.DISPATCH_CYCLE, self._tick_of(self._next_dispatch)
        )
        self._schedule_stream(
            EventKind.ACTION_APPLY,
            self._tick_of(self._action_queue[0][0])
            if self._action_queue
            else self._num_ticks,
        )
        self._sync_wake_events()

    def run(self) -> SimulationResult:
        cfg = self.config
        self._requests_arr.cursor = 0
        self._activation_cursor = 0
        self._next_dispatch = cfg.t0_s
        self._cycle_index = 0
        self._processed = -1
        self._ticks_run = 0
        events = self._events = EventHeap()
        self._wake_tokens.clear()
        self._stream_tokens.clear()
        self._schedule_stream(EventKind.DISPATCH_CYCLE, 0)
        first_req = self._requests_arr.next_time()
        if first_req is not None:
            self._schedule_stream(
                EventKind.REQUEST_ACTIVATION, self._tick_of(first_req)
            )
        for k, team_ids in self._breakdown_triggers.items():
            for team_id in team_ids:
                events.schedule(k, EventKind.BREAKDOWN, team_id)
        for bound in self._closure_bounds:
            kb = self._tick_of(float(bound))
            if kb < self._num_ticks:
                events.schedule(kb, EventKind.CLOSURE_CHANGE)
        self._team_array.dirty.clear()  # spawn state: everyone idle, wake +inf
        while True:
            ev = events.pop()
            if ev is None:
                break
            k = int(ev.time)
            if k <= self._processed:
                continue  # stale: that tick already ran (or was superseded)
            if k >= self._num_ticks:
                break  # heap is time-ordered; nothing in-window remains
            self._processed = k
            self._run_tick(float(self._tick_times[k]), k)
        return self._result


# -- process-wide wiring -----------------------------------------------------

_ENABLED = True


def set_event_kernel_enabled(enabled: bool) -> bool:
    """Flip the process-wide kernel switch; returns the previous setting.

    The golden-equivalence suite uses this to run the same scenario
    through the event kernel and the seed fixed-tick loop.
    """
    global _ENABLED  # repro: allow-fork-unsafe -- test-only switch; results identical either way
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def event_kernel_enabled() -> bool:
    return _ENABLED


def build_simulator(
    scenario: CharlotteScenario,
    requests: list[RescueRequest],
    dispatcher: Dispatcher,
    config: SimulationConfig,
    faults: "FaultInjector | None" = None,
    router: Router | None = None,
    on_cycle: Callable[[int, float, bool], None] | None = None,
) -> RescueSimulator:
    """The simulator the hot paths should construct: the event kernel, or
    the seed fixed-tick engine when the kernel is disabled."""
    cls = EventKernelSimulator if _ENABLED else RescueSimulator
    return cls(
        scenario, requests, dispatcher, config,
        faults=faults, router=router, on_cycle=on_cycle,
    )

"""Routing and closure indexes for the event kernel.

Three structures remove the seed engine's per-query routing cost without
changing a single answer:

* :class:`HospitalField` — one multi-source reverse Dijkstra per closed
  set answers every nearest-hospital query and every route-to-hospital
  for the whole fleet.  The seed path runs one full forward tree per
  querying team (team positions drift every tick, so the PR 4 tree cache
  rarely hits); the field replaces ~one tree per team-event with one
  search per flood front.  Settled labels are final when popped, and the
  heap orders ties by ``(distance, hospital list order)`` — exactly the
  seed argmin's first-minimum-wins scan — so the selected hospital and
  the reconstructed path match the seed's forward search wherever
  shortest paths are unique (path costs are sums of continuous random
  segment times, so cross-path float ties do not occur in generated
  scenarios; the golden-equivalence suite pins this empirically).

* :class:`FloodClosureIndex` — the flood's closed-segment set recomputed
  without re-deriving static geometry.  Midpoint altitudes and region
  memberships never change; only the per-region waterline moves.  The
  index calls the same ``waterline_m`` (same ``np.quantile``) the seed
  calls and compares against the precomputed altitudes, producing the
  identical frozenset.

* :class:`PrefilteredRouter` — the PR 4 :class:`RoutingCache` with the
  closed-set membership test hoisted out of the Dijkstra inner loop:
  adjacency rows for a closed set are filtered once per flood front, so
  each search skips the per-edge ``in closed`` check.  Dropping rows the
  seed loop ``continue``s over leaves the relax sequence — and therefore
  every label, tie-break and tree — bit-identical.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.perf.routing_cache import RoutingCache, Tree
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.routing import Route, route_from_segments, route_from_tree

_WEIGHTS = ("time", "length")

#: Adjacency with closed rows removed: node -> ((segment, other, time, length), ...).
_Adjacency = dict[int, list[tuple[int, int, float, float]]]


def filtered_adjacency(
    network: RoadNetwork, closed: frozenset[int], reverse: bool = False
) -> _Adjacency:
    """Adjacency rows with closed segments dropped (relax order preserved)."""
    adj = network.in_adjacency() if reverse else network.out_adjacency()
    if not closed:
        return adj
    return {
        node: [row for row in rows if row[0] not in closed]
        for node, rows in adj.items()
    }


class HospitalField:
    """Nearest-hospital assignment for every node under one closed set."""

    __slots__ = ("network", "hospital_nodes", "nearest", "next_seg")

    def __init__(
        self,
        network: RoadNetwork,
        hospital_nodes: list[int],
        closed: frozenset[int],
        adjacency: _Adjacency | None = None,
    ) -> None:
        self.network = network
        self.hospital_nodes = hospital_nodes
        #: node -> nearest hospital node (absent: no hospital reachable).
        self.nearest: dict[int, int] = {}
        #: node -> first segment of the node's best path to its hospital.
        self.next_seg: dict[int, int] = {}
        self._build(closed, adjacency)

    def _build(self, closed: frozenset[int], adjacency: _Adjacency | None) -> None:
        import heapq

        adj = (
            adjacency
            if adjacency is not None
            else filtered_adjacency(self.network, closed, reverse=True)
        )
        # Multi-source Dijkstra over reversed edges: dist[n] is the cost of
        # n's cheapest path *to* any hospital.  The heap orders by
        # (distance, hospital list index, node), and relaxation prefers the
        # earlier-listed hospital on exact distance ties — the seed's
        # first-minimum-wins argmin over the hospital list.
        dist: dict[int, float] = {}
        order_of: dict[int, int] = {}
        heap: list[tuple[float, int, int]] = []
        for order, h in enumerate(self.hospital_nodes):
            if h not in dist or order < order_of[h]:
                dist[h] = 0.0
                order_of[h] = order
                heapq.heappush(heap, (0.0, order, h))
        done: set[int] = set()
        inf = float("inf")
        nearest = self.nearest
        next_seg = self.next_seg
        hospitals = self.hospital_nodes
        while heap:
            d, order, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            nearest[node] = hospitals[order]
            for row in adj[node]:
                nd = d + row[2]
                other = row[1]
                cur = dist.get(other, inf)
                if nd < cur or (nd == cur and order < order_of[other]):
                    dist[other] = nd
                    order_of[other] = order
                    next_seg[other] = row[0]
                    heapq.heappush(heap, (nd, order, other))

    def route(self, src: int) -> Route | None:
        """The ``src`` → nearest-hospital route, or None when marooned.

        Route times/lengths are re-summed from the segment sequence (the
        seed's ``_route_from_segments``), so no search-accumulated float
        ever reaches a recorded result.
        """
        target = self.nearest.get(src)
        if target is None:
            return None
        if target == src:
            return Route((src,), (), 0.0, 0.0)
        seg_ids: list[int] = []
        node = src
        network = self.network
        while node != target:
            sid = self.next_seg[node]
            seg_ids.append(sid)
            node = network.segment(sid).v
        return route_from_segments(network, src, seg_ids)


class HospitalFieldCache:
    """Per-closed-set :class:`HospitalField` store (LRU, like the tree cache)."""

    def __init__(
        self, network: RoadNetwork, hospital_nodes: list[int], max_sets: int = 16
    ) -> None:
        if max_sets < 1:
            raise ValueError("cache bound must be positive")
        self.network = network
        self.hospital_nodes = list(hospital_nodes)
        self.max_sets = int(max_sets)
        self._fields: OrderedDict[frozenset[int], HospitalField] = OrderedDict()
        self.builds = 0

    def field(
        self, closed: frozenset[int], adjacency: _Adjacency | None = None
    ) -> HospitalField:
        cached = self._fields.get(closed)
        if cached is not None:
            self._fields.move_to_end(closed)
            return cached
        self.builds += 1
        built = HospitalField(self.network, self.hospital_nodes, closed, adjacency)
        self._fields[closed] = built
        while len(self._fields) > self.max_sets:
            self._fields.popitem(last=False)
        return built


class FloodClosureIndex:
    """Vectorized ``network.closed_segments(flood, t)`` over static geometry.

    ``flood`` is any object with the :class:`repro.geo.flood.FloodModel`
    surface (``terrain``, ``partition``, ``waterline_m``).
    """

    def __init__(self, network: RoadNetwork, flood: object) -> None:
        self.flood = flood
        seg_ids = sorted(network.segment_ids())
        mids = np.array([network.segment_midpoint(s) for s in seg_ids])
        self._seg_ids = np.array(seg_ids)
        # Static per-midpoint geometry: the seed recomputes these on every
        # flood query; they depend only on the frozen network.
        self._alts = flood.terrain.altitude_many(mids)  # type: ignore[attr-defined]
        regions = flood.partition.region_of_many(mids)  # type: ignore[attr-defined]
        self._region_ids = [int(r) for r in flood.partition.region_ids]  # type: ignore[attr-defined]
        slot_of = {rid: i for i, rid in enumerate(self._region_ids)}
        self._region_slot = np.array([slot_of[int(r)] for r in regions], dtype=np.int64)
        self._waterlines = np.empty(len(self._region_ids), dtype=np.float64)

    def closed_at(self, t_s: float) -> frozenset[int]:
        """Flood-closed segment ids at ``t`` — same frozenset as the seed.

        Calls the seed's own ``waterline_m`` per region (identical
        ``np.quantile`` floats) and broadcasts over precomputed altitudes;
        ``alts <= waterline`` is the seed comparison elementwise.
        """
        wl = self._waterlines
        for slot, rid in enumerate(self._region_ids):
            wl[slot] = self.flood.waterline_m(rid, t_s)  # type: ignore[attr-defined]
        flooded = self._alts <= wl[self._region_slot]
        return frozenset(int(i) for i in self._seg_ids[flooded])


class PrefilteredRouter(RoutingCache):
    """:class:`RoutingCache` running its searches on prefiltered adjacency.

    Overrides only the two search call sites; the memoization policy
    (first-touch target-pruned, second-touch full-tree promotion, LRU
    bounds) is inherited unchanged.
    """

    def __init__(
        self,
        network: RoadNetwork,
        max_closure_sets: int = 16,
        max_trees_per_closure: int = 8192,
    ) -> None:
        super().__init__(network, max_closure_sets, max_trees_per_closure)
        self._adjacencies: OrderedDict[tuple[frozenset[int], bool], _Adjacency] = (
            OrderedDict()
        )

    def adjacency(self, closed: frozenset[int], reverse: bool = False) -> _Adjacency:
        key = (closed, reverse)
        cached = self._adjacencies.get(key)
        if cached is not None:
            self._adjacencies.move_to_end(key)
            return cached
        built = filtered_adjacency(self.network, closed, reverse)
        self._adjacencies[key] = built
        while len(self._adjacencies) > self.max_closure_sets:
            self._adjacencies.popitem(last=False)
        return built

    def _search(
        self,
        root: int,
        closed: frozenset[int],
        weight: str,
        reverse: bool = False,
        target: int | None = None,
    ) -> Tree:
        """The seed ``dijkstra_tree`` loop minus the per-edge closed test."""
        import heapq

        if weight not in _WEIGHTS:
            raise ValueError(f"weight must be one of {_WEIGHTS}")
        self.network.landmark(root)
        adj = self.adjacency(closed, reverse)
        wi = 2 if weight == "time" else 3
        dist: dict[int, float] = {root: 0.0}
        prev_seg: dict[int, int] = {}
        done: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, root)]
        inf = float("inf")
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            if target is not None and node == target:
                break
            done.add(node)
            for row in adj[node]:
                nd = d + row[wi]
                other = row[1]
                if nd < dist.get(other, inf):
                    dist[other] = nd
                    prev_seg[other] = row[0]
                    heapq.heappush(heap, (nd, other))
        return dist, prev_seg

    # -- RoutingCache search call sites, redirected --------------------------

    def _tree(
        self, root: int, closed: frozenset[int], weight: str, reverse: bool
    ) -> Tree:
        line = self._line(closed, weight)
        tkey = (root, reverse)
        tree = line.trees.get(tkey)
        if tree is None:
            self.misses += 1
            tree = self._search(root, closed, weight, reverse=reverse)
            self._store(line, tkey, tree)
        else:
            self.hits += 1
            line.trees.move_to_end(tkey)
        return tree

    def route(
        self,
        src: int,
        dst: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> Route | None:
        if weight not in _WEIGHTS:
            raise ValueError(f"weight must be one of {_WEIGHTS}")
        self.network.landmark(src)
        self.network.landmark(dst)
        if src == dst:
            return Route((src,), (), 0.0, 0.0)
        line = self._line(closed, weight)
        tkey = (src, False)
        tree = line.trees.get(tkey)
        if tree is not None:
            self.hits += 1
            line.trees.move_to_end(tkey)
        elif tkey in line.seen:
            self.misses += 1
            tree = self._search(src, closed, weight)
            self._store(line, tkey, tree)
        else:
            line.seen.add(tkey)
            self.misses += 1
            tree = self._search(src, closed, weight, target=dst)
        return route_from_tree(self.network, src, dst, tree[1])

"""Structure-of-arrays team and request state for the event kernel.

:class:`TeamArray` keeps the scan-hot fields of every team in numpy
columns (position, state code, remaining capacity, wake-up time, repair
time, leg progress), so per-tick questions — *which teams need attention
at tick t?*, *is any idle team standing at this segment?* — are single
vectorized expressions instead of Python loops over ``RescueTeam``
objects.  Ragged per-team payloads (route node/segment tuples, absolute
node-arrival times, passenger lists, the deferred dispatch command) stay
in plain Python lists, exactly as the seed engine keeps them.

:class:`TeamArrayView` is a zero-copy per-team facade over one column
index with the full attribute/method surface of
:class:`repro.sim.teams.RescueTeam` — the seed engine's team logic runs
on views unchanged, every write lands in the columns, and the randomized
round-trip suite (``tests/test_kernel_team_array.py``) pins view state
bit-equal to a ``RescueTeam`` driven through the same mutations.

The ``wake_s`` column is the kernel's scheduling contract: for every team
it holds the earliest absolute time at which the seed tick body could do
anything observable to that team (next node arrival while driving, repair
completion while broken down, "now" when idle with a deferred command,
``+inf`` otherwise).  Every mutator keeps it current and adds the team to
the ``dirty`` set, which the engine drains once per processed tick to
reschedule wake events — over-eager wake-ups are harmless (the tick body
is a provable no-op), missed wake-ups are the only hazard, hence the
conservative rule.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.roadnet.routing import Route
from repro.sim.requests import RescueRequest
from repro.sim.teams import TeamState

_STATE_CODE = {TeamState.IDLE: 0, TeamState.TO_SEGMENT: 1, TeamState.TO_HOSPITAL: 2}
_NO_TARGET = -1


class _PassengerList(list[int]):
    """Passenger list that mirrors its length into the capacity column."""

    __slots__ = ("_array", "_i")

    def __init__(self, array: "TeamArray", i: int) -> None:
        super().__init__()
        self._array = array
        self._i = i

    def append(self, request_id: int) -> None:
        super().append(request_id)
        self._array.capacity_left[self._i] = self._array.capacity - len(self)

    def clear(self) -> None:
        super().clear()
        self._array.capacity_left[self._i] = self._array.capacity


class TeamArray:
    """Columnar state of the whole fleet (see module docstring)."""

    def __init__(self, capacity: int, nodes: Iterable[int]) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        node_list = [int(n) for n in nodes]
        n = len(node_list)
        if n < 1:
            raise ValueError("need at least one team")
        self.capacity = int(capacity)
        self.num_teams = n
        # -- numpy columns (the vectorized-scan surface) --------------------
        self.node = np.array(node_list, dtype=np.int64)
        self.state_code = np.zeros(n, dtype=np.int8)
        self.capacity_left = np.full(n, capacity, dtype=np.int64)
        self.next_node_idx = np.zeros(n, dtype=np.int64)
        self.target_segment = np.full(n, _NO_TARGET, dtype=np.int64)
        self.leg_start_s = np.zeros(n, dtype=np.float64)
        self.total_pickups = np.zeros(n, dtype=np.int64)
        self.down_until_s = np.full(n, np.nan, dtype=np.float64)
        self.wake_s = np.full(n, np.inf, dtype=np.float64)
        # -- ragged per-team payloads --------------------------------------
        self.state: list[TeamState] = [TeamState.IDLE] * n
        self.route_nodes: list[tuple[int, ...]] = [()] * n
        self.route_segments: list[tuple[int, ...]] = [()] * n
        self.node_times: list[np.ndarray | None] = [None] * n
        self.passengers: list[_PassengerList] = [_PassengerList(self, i) for i in range(n)]
        self.pending_assignment: list[object | None] = [None] * n
        #: Teams whose ``wake_s`` changed since the engine last drained
        #: this set (scheduling only, never results).
        self.dirty: set[int] = set()
        self._views = [TeamArrayView(self, i) for i in range(n)]

    def views(self) -> "list[TeamArrayView]":
        return list(self._views)

    def view(self, i: int) -> "TeamArrayView":
        return self._views[i]

    def _recompute_wake(self, i: int) -> None:
        down = self.down_until_s[i]
        if down == down:  # not NaN: broken down, wake at repair completion
            wake = float(down)
        elif self.state[i] is not TeamState.IDLE:
            idx = int(self.next_node_idx[i])
            times = self.node_times[i]
            if times is not None and idx < len(times):
                wake = float(times[idx])
            else:
                wake = float("inf")
        elif self.pending_assignment[i] is not None:
            wake = float("-inf")  # apply the deferred command this tick
        else:
            wake = float("inf")
        if wake != self.wake_s[i]:
            self.wake_s[i] = wake
            self.dirty.add(i)

    def attention(self, t: float) -> np.ndarray:
        """Ascending indices of teams the tick body must visit at ``t``."""
        return np.flatnonzero(self.wake_s <= t)

    def serving_ids(self) -> set[int]:
        """Teams driving to a hospital or to an assigned segment — the
        fleet half of the seed serving-sample census, as one vectorized
        expression."""
        mask = (self.state_code == 2) | (
            (self.state_code == 1) & (self.target_segment != _NO_TARGET)
        )
        return set(np.flatnonzero(mask).tolist())

    def idle_team_at(self, nodes: tuple[int, int]) -> int | None:
        """First (lowest-id) idle, operable team with spare capacity
        standing at either endpoint — the seed ``_immediate_pickup`` scan
        as one vectorized expression."""
        mask = (
            (self.state_code == 0)
            & (self.down_until_s != self.down_until_s)  # NaN == operational
            & (self.capacity_left > 0)
            & ((self.node == nodes[0]) | (self.node == nodes[1]))
        )
        hits = np.flatnonzero(mask)
        return int(hits[0]) if hits.size else None


class TeamArrayView:
    """One team's :class:`RescueTeam`-shaped window into the columns."""

    __slots__ = ("_a", "_i")

    def __init__(self, array: TeamArray, i: int) -> None:
        self._a = array
        self._i = i

    # -- identity -----------------------------------------------------------

    @property
    def team_id(self) -> int:
        return self._i

    @property
    def capacity(self) -> int:
        return self._a.capacity

    # -- columns ------------------------------------------------------------

    @property
    def node(self) -> int:
        return int(self._a.node[self._i])

    @node.setter
    def node(self, value: int) -> None:
        self._a.node[self._i] = int(value)

    @property
    def state(self) -> TeamState:
        return self._a.state[self._i]

    @state.setter
    def state(self, value: TeamState) -> None:
        self._a.state[self._i] = value
        self._a.state_code[self._i] = _STATE_CODE[value]
        self._a._recompute_wake(self._i)

    @property
    def passengers(self) -> _PassengerList:
        return self._a.passengers[self._i]

    @property
    def route_nodes(self) -> tuple[int, ...]:
        return self._a.route_nodes[self._i]

    @property
    def route_segments(self) -> tuple[int, ...]:
        return self._a.route_segments[self._i]

    @property
    def node_times(self) -> np.ndarray | None:
        return self._a.node_times[self._i]

    @property
    def next_node_idx(self) -> int:
        return int(self._a.next_node_idx[self._i])

    @next_node_idx.setter
    def next_node_idx(self, value: int) -> None:
        self._a.next_node_idx[self._i] = int(value)
        self._a._recompute_wake(self._i)

    @property
    def target_segment(self) -> int | None:
        value = int(self._a.target_segment[self._i])
        return None if value == _NO_TARGET else value

    @property
    def leg_start_s(self) -> float:
        return float(self._a.leg_start_s[self._i])

    @leg_start_s.setter
    def leg_start_s(self, value: float) -> None:
        self._a.leg_start_s[self._i] = float(value)

    @property
    def pending_assignment(self) -> object | None:
        return self._a.pending_assignment[self._i]

    @pending_assignment.setter
    def pending_assignment(self, value: object | None) -> None:
        self._a.pending_assignment[self._i] = value
        self._a._recompute_wake(self._i)

    @property
    def total_pickups(self) -> int:
        return int(self._a.total_pickups[self._i])

    @total_pickups.setter
    def total_pickups(self, value: int) -> None:
        self._a.total_pickups[self._i] = int(value)

    @property
    def down_until_s(self) -> float | None:
        value = float(self._a.down_until_s[self._i])
        return None if value != value else value

    # -- derived properties (seed formulas) ---------------------------------

    @property
    def capacity_left(self) -> int:
        return self._a.capacity - len(self._a.passengers[self._i])

    @property
    def is_driving(self) -> bool:
        return self._a.state[self._i] is not TeamState.IDLE

    @property
    def is_down(self) -> bool:
        return self.down_until_s is not None

    @property
    def is_assignable(self) -> bool:
        return self._a.state[self._i] is not TeamState.TO_HOSPITAL and not self.is_down

    @property
    def arrival_time_s(self) -> float | None:
        times = self._a.node_times[self._i]
        return None if times is None else float(times[-1])

    # -- transitions (seed RescueTeam semantics) -----------------------------

    def begin_leg(
        self,
        route: Route,
        speed_multiplier: float,
        segment_times_s: np.ndarray,
        t_now: float,
        state: TeamState,
        target_segment: int | None,
    ) -> None:
        if state is TeamState.IDLE:
            raise ValueError("a leg must target a segment or a hospital")
        if len(segment_times_s) != len(route.segment_ids):
            raise ValueError("segment_times_s must align with the route")
        if route.src != self.node:
            raise ValueError(
                f"route starts at {route.src} but team {self._i} is at {self.node}"
            )
        a, i = self._a, self._i
        a.route_nodes[i] = route.nodes
        a.route_segments[i] = route.segment_ids
        a.node_times[i] = np.concatenate([[t_now], t_now + np.cumsum(segment_times_s)])
        a.next_node_idx[i] = 1
        a.state[i] = state
        a.state_code[i] = _STATE_CODE[state]
        a.target_segment[i] = _NO_TARGET if target_segment is None else int(target_segment)
        a.leg_start_s[i] = float(t_now)
        a._recompute_wake(i)

    def stop(self) -> None:
        a, i = self._a, self._i
        a.route_nodes[i] = ()
        a.route_segments[i] = ()
        a.node_times[i] = None
        a.next_node_idx[i] = 0
        a.target_segment[i] = _NO_TARGET
        a.state[i] = TeamState.IDLE
        a.state_code[i] = 0
        a._recompute_wake(i)

    def break_down(self, repair_done_s: float) -> None:
        if self.is_driving:
            self.stop()
        self._a.down_until_s[self._i] = float(repair_done_s)
        self._a._recompute_wake(self._i)

    def repair(self) -> None:
        self._a.down_until_s[self._i] = np.nan
        self._a._recompute_wake(self._i)


class RequestArray:
    """Activation-time column over the sorted request list.

    Activation is an indexed pop: a cursor over the presorted
    ``time_s`` column replaces the seed's repeated deque head rescans,
    and ``next_time`` is what the kernel schedules its next
    request-activation event from.
    """

    def __init__(self, requests: list[RescueRequest]) -> None:
        self.requests = requests
        self.time_s = np.array([r.time_s for r in requests], dtype=np.float64)
        if np.any(self.time_s[1:] < self.time_s[:-1]):
            raise ValueError("requests must be sorted by time")
        self.segment_id = np.array([r.segment_id for r in requests], dtype=np.int64)
        self.cursor = 0

    def __len__(self) -> int:
        return len(self.requests)

    def next_time(self) -> float | None:
        """Activation time of the next inactive request, if any."""
        if self.cursor >= len(self.requests):
            return None
        return float(self.time_s[self.cursor])

    def take_due(self, upto_t: float) -> list[RescueRequest]:
        """Pop every request with ``time_s <= upto_t``, in order."""
        start = self.cursor
        end = int(np.searchsorted(self.time_s, upto_t, side="right"))
        if end <= start:
            return []
        self.cursor = end
        return self.requests[start:end]


def team_array_from_views(views: "list[TeamArrayView] | list[Any]") -> TeamArray | None:
    """The backing :class:`TeamArray` when ``views`` came from one."""
    if views and isinstance(views[0], TeamArrayView):
        return views[0]._a
    return None

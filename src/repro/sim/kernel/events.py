"""Deterministic event scheduler for the hybrid event-driven kernel.

A thin priority queue with exactly the ordering the kernel needs:
events pop in ``(time, kind, team_id)`` order, with a monotonically
increasing sequence number as the final tie-breaker so insertion order
decides between otherwise-identical events.  Cancellation and
rescheduling use tombstones (lazy deletion): a cancelled entry stays in
the heap until it surfaces, at which point it is silently discarded.
Every live event is popped exactly once — the property suite
(``tests/test_kernel_scheduler.py``) drives randomized
schedule/cancel/reschedule sequences against a sorted-list oracle to pin
ordering, no-loss and no-duplication.

Times are plain floats (the engine uses integer tick indices, which are
exact); ``EventKind`` values define the within-tick priority between
event classes, mirroring the seed tick body's phase order.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass


class EventKind(enum.IntEnum):
    """Event classes, ordered by the seed tick body's phase order.

    Ordering only breaks ties between events at the same time; the engine
    processes every phase of a tick regardless of which event woke it, so
    the kind order is a determinism guarantee, not a control-flow one.
    """

    REQUEST_ACTIVATION = 0
    DISPATCH_CYCLE = 1
    FLOOD_FRONT = 2
    CLOSURE_CHANGE = 3
    ACTION_APPLY = 4
    BREAKDOWN = 5
    REPAIR = 6
    ARRIVAL = 7


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence; ``team_id`` is -1 for fleet-wide events."""

    time: float
    kind: EventKind
    team_id: int = -1


class EventHeap:
    """Priority queue of :class:`Event` with deterministic tie-breaking.

    ``schedule`` returns an opaque token for ``cancel`` / ``reschedule``.
    Tokens are single-use: once the event has popped or been cancelled,
    the token is dead and further operations on it return ``False`` /
    raise ``KeyError`` respectively.
    """

    def __init__(self) -> None:
        #: (time, kind, team_id, seq, token)
        self._heap: list[tuple[float, int, int, int, int]] = []
        self._seq = itertools.count()
        self._tokens = itertools.count()
        #: token -> Event for live (not yet popped, not cancelled) entries.
        self._live: dict[int, Event] = {}
        self.popped = 0

    def __len__(self) -> int:
        return len(self._live)

    def schedule(self, time: float, kind: EventKind, team_id: int = -1) -> int:
        """Add an event; returns a token usable with cancel/reschedule."""
        if time != time:  # NaN would corrupt heap order
            raise ValueError("event time must not be NaN")
        token = next(self._tokens)
        self._live[token] = Event(float(time), kind, int(team_id))
        heapq.heappush(
            self._heap, (float(time), int(kind), int(team_id), next(self._seq), token)
        )
        return token

    def cancel(self, token: int) -> bool:
        """Remove a live event; False when already popped or cancelled."""
        return self._live.pop(token, None) is not None

    def reschedule(self, token: int, time: float) -> int:
        """Move a live event to a new time; returns the replacement token.

        Raises ``KeyError`` for a dead token — a reschedule must never
        silently resurrect an event that already fired.
        """
        event = self._live.pop(token, None)
        if event is None:
            raise KeyError(f"event token {token} is not live")
        return self.schedule(time, event.kind, event.team_id)

    def peek(self) -> Event | None:
        """The earliest live event, without removing it."""
        heap = self._heap
        while heap:
            token = heap[0][4]
            event = self._live.get(token)
            if event is not None:
                return event
            heapq.heappop(heap)  # tombstone: discard and keep looking
        return None

    def pop(self) -> Event | None:
        """Remove and return the earliest live event; None when empty."""
        heap = self._heap
        while heap:
            token = heapq.heappop(heap)[4]
            event = self._live.pop(token, None)
            if event is not None:
                self.popped += 1
                return event
        return None

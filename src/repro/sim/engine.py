"""The rescue-dispatching simulation engine.

Drives a fleet of rescue teams over one evaluation window (the paper: 100
teams, 24 hours, Sep 16) against a stream of ground-truth rescue requests:

* every ``dispatch_period_s`` (5 min) the pluggable dispatcher is called
  with the current observation; its commands take effect after its
  computation delay (IP baselines ~300 s, RL < 0.5 s);
* teams drive precomputed legs at flood-adjusted speeds over the operable
  network, picking up pending requests on every segment they traverse
  (up to capacity c), and deliver passengers to the nearest hospital;
* every pickup/delivery/serving-count event is recorded for the metrics
  module (Figs. 9-14).
"""

from __future__ import annotations

import heapq
import itertools
import logging
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.data.charlotte import CharlotteScenario
from repro.dispatch.base import (
    DispatchGuard,
    DispatchObservation,
    Dispatcher,
    TeamCommand,
    TeamView,
)
from repro.hospitals.hospitals import Hospital
from repro.perf.routing_cache import Router, default_router
from repro.roadnet.routing import Route
from repro.sim.requests import RescueRequest
from repro.sim.teams import RescueTeam, TeamState

if TYPE_CHECKING:  # the fault layer is optional; only the type is needed here
    from repro.faults.models import FaultInjector

logger = logging.getLogger("repro.sim.engine")


@dataclass(frozen=True)
class SimulationConfig:
    """Evaluation-window parameters (paper Section V-B defaults)."""

    t0_s: float
    t1_s: float
    num_teams: int = 100
    team_capacity: int = 5
    dispatch_period_s: float = 300.0
    step_s: float = 60.0
    #: Driving speed multiplier at full flood level (matches the trace
    #: generator so team travel times and civilian travel times agree).
    storm_slowdown: float = 0.5
    #: Requests served within this bound are "timely served" (paper: 30 min).
    timely_window_s: float = 1_800.0
    seed: int = 0
    #: Wall-clock budget for one dispatcher invocation; an overrun
    #: activates the fallback policy for that cycle.  ``None`` disables
    #: the check (exceptions are always guarded regardless).
    dispatch_budget_s: float | None = None
    #: Capacity of the incident ring buffer.  A chaos run tripping a
    #: breaker every cycle must not grow the run record without bound;
    #: once full, the oldest incidents are shed and counted in
    #: ``SimulationResult.incidents_dropped``.
    max_incidents: int = 10_000

    def __post_init__(self) -> None:
        if self.t1_s <= self.t0_s:
            raise ValueError("need t0 < t1")
        if self.num_teams < 1 or self.team_capacity < 1:
            raise ValueError("need at least one team with positive capacity")
        if self.step_s <= 0 or self.dispatch_period_s <= 0:
            raise ValueError("step and dispatch period must be positive")
        if self.step_s > self.dispatch_period_s:
            raise ValueError("step must not exceed the dispatch period")
        if self.timely_window_s <= 0:
            raise ValueError("timely window must be positive")
        if not 0.0 < self.storm_slowdown <= 1.0:
            raise ValueError("storm slowdown must be in (0, 1]")
        if self.dispatch_budget_s is not None and self.dispatch_budget_s <= 0:
            raise ValueError("dispatch budget must be positive (or None to disable)")
        if self.max_incidents < 1:
            raise ValueError("incident ring needs capacity for at least one event")


@dataclass(frozen=True)
class PickupEvent:
    request_id: int
    team_id: int
    t_s: float
    #: Driving time since the serving team began its current leg.
    driving_delay_s: float
    #: Pickup time minus request time, floored at 0 (paper's timeliness).
    timeliness_s: float


@dataclass(frozen=True)
class DeliveryEvent:
    request_id: int
    team_id: int
    t_s: float
    hospital_node: int


@dataclass(frozen=True)
class IncidentEvent:
    """One degradation event recorded during a run.

    Kinds: ``dispatcher_fallback`` (dispatcher raised, blew its compute
    budget, or an injected dispatch-center failure), ``dropped_command``
    (radio outage ate a command), ``breakdown`` / ``repair_complete``
    (vehicle failure lifecycle), ``reroute`` (a team detoured around a
    closed segment mid-leg), ``hook_error`` (a dispatcher hook raised and
    was ignored).
    """

    kind: str
    t_s: float
    team_id: int | None = None
    detail: str = ""


@dataclass
class SimulationResult:
    """Everything recorded during one simulation run."""

    config: SimulationConfig
    dispatcher_name: str
    requests: list[RescueRequest]
    pickups: list[PickupEvent] = field(default_factory=list)
    deliveries: list[DeliveryEvent] = field(default_factory=list)
    #: (cycle time, number of serving teams) samples, one per dispatch cycle.
    serving_samples: list[tuple[float, int]] = field(default_factory=list)
    #: Degradation events (fault injection and graceful-degradation paths).
    #: Bounded: a ring of the most recent ``config.max_incidents`` events.
    incidents: deque[IncidentEvent] = field(default_factory=deque)
    #: Oldest incidents shed once the ring filled up.
    incidents_dropped: int = 0

    def __post_init__(self) -> None:
        # Normalise to a bounded ring regardless of what the caller passed
        # (a plain list from older call sites works transparently).
        self.incidents = deque(self.incidents, maxlen=self.config.max_incidents)

    @property
    def num_served(self) -> int:
        return len(self.pickups)

    @property
    def num_unserved(self) -> int:
        return len(self.requests) - len(self.pickups)


class RescueSimulator:
    """Simulates one dispatcher over one evaluation window."""

    def __init__(
        self,
        scenario: CharlotteScenario,
        requests: list[RescueRequest],
        dispatcher: Dispatcher,
        config: SimulationConfig,
        faults: "FaultInjector | None" = None,
        router: Router | None = None,
        on_cycle: Callable[[int, float, bool], None] | None = None,
    ) -> None:
        self.scenario = scenario
        self.network = scenario.network
        #: Routing entry point for every in-sim Dijkstra: the process-wide
        #: closure-aware cache by default, or an explicit router (the
        #: equivalence tests pass a DirectRouter to reproduce seed behavior).
        self.router = router if router is not None else default_router(scenario.network)
        self.hospitals: list[Hospital] = scenario.hospitals
        self._hospital_nodes = {h.node_id for h in scenario.hospitals}
        self.dispatcher = dispatcher
        self.config = config
        self.requests = sorted(requests, key=lambda r: r.time_s)
        self._rng = np.random.default_rng(config.seed)
        self._teams = self._spawn_teams()
        self._pending: dict[int, deque[RescueRequest]] = {}
        self._requests_by_id = {r.request_id: r for r in self.requests}
        self._closed: frozenset[int] = frozenset()
        #: request_id -> time a team first started driving toward it.
        self._first_response: dict[int, float] = {}
        self._result = SimulationResult(
            config=config, dispatcher_name=dispatcher.name, requests=self.requests
        )
        self._action_queue: list[tuple[float, int, dict[int, TeamCommand]]] = []
        self._action_counter = itertools.count()
        #: Index of the first not-yet-activated request (requests are sorted).
        self._activation_cursor = 0
        self._next_dispatch = config.t0_s
        self._cycle_index = 0
        #: Fault layer: ``None`` means zero-cost (no per-step branching
        #: beyond one identity check).  A null injector is dropped here.
        self.faults = faults if faults is not None and not faults.is_null else None
        if self.faults is not None:
            self.faults.bind_segments(self.network.segment_ids())
        self._guard = DispatchGuard(dispatcher, budget_s=config.dispatch_budget_s)
        #: (team_id, window start) of breakdowns already triggered.
        self._handled_breakdowns: set[tuple[int, float]] = set()
        #: Observer invoked after every dispatch cycle with
        #: ``(cycle_index, t_s, dispatcher_ran)`` — the service loop's
        #: per-tick heartbeat (injected dispatch-center failures skip the
        #: guard entirely, so guard counters alone cannot prove liveness).
        self._on_cycle = on_cycle

    # -- setup ----------------------------------------------------------------

    def _spawn_teams(self) -> list[RescueTeam]:
        """Paper Section V-B: initial team positions are randomly distributed
        among the hospitals."""
        nodes = [h.node_id for h in self.hospitals]
        return [
            RescueTeam(
                team_id=i,
                capacity=self.config.team_capacity,
                node=int(self._rng.choice(nodes)),
            )
            for i in range(self.config.num_teams)
        ]

    # -- helpers ----------------------------------------------------------------

    def _record_incident(
        self, kind: str, t_s: float, team_id: int | None = None, detail: str = ""
    ) -> None:
        ring = self._result.incidents
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self._result.incidents_dropped += 1
        ring.append(IncidentEvent(kind=kind, t_s=t_s, team_id=team_id, detail=detail))
        logger.info(
            "incident %s t=%.0f%s%s",
            kind,
            t_s,
            f" team={team_id}" if team_id is not None else "",
            f" ({detail})" if detail else "",
        )

    def _speed_multiplier(self, t: float) -> float:
        return max(0.2, 1.0 - self.config.storm_slowdown * self.scenario.timeline.flood_level(t))

    def _leg_times(self, route: Route, t: float) -> np.ndarray:
        mult = self._speed_multiplier(t)
        return np.array(
            [self.network.segment(s).free_flow_time_s / mult for s in route.segment_ids]
        )

    def _nearest_hospital_node(self, node: int) -> int | None:
        times = self.router.time_from(node, closed=self._closed)
        best_node, best_t = None, float("inf")
        for h in self.hospitals:
            t = times.get(h.node_id, float("inf"))
            if t < best_t:
                best_node, best_t = h.node_id, t
        return best_node

    def _team_view(self, team: RescueTeam) -> TeamView:
        return TeamView(
            team_id=team.team_id,
            node=team.node,
            state=team.state.value,
            capacity_left=team.capacity_left,
            assignable=team.is_assignable,
            total_pickups=team.total_pickups,
            target_segment=team.target_segment,
        )

    def _observation(self, t: float) -> DispatchObservation:
        return DispatchObservation(
            t_s=t,
            teams=[self._team_view(tm) for tm in self._teams],
            pending={s: len(q) for s, q in self._pending.items() if q},
            closed=self._closed,
            network=self.network,
            hospitals=self.hospitals,
        )

    # -- request lifecycle ---------------------------------------------------------

    def _take_due_requests(self, upto_t: float) -> list[RescueRequest]:
        """Indexed pop of every not-yet-active request with ``time_s <= t``.

        ``self.requests`` is sorted by time, so an advancing cursor replaces
        the old deque-head rescan; activation order is unchanged (pinned by
        ``tests/test_activation_order.py``).  The event kernel overrides
        this with its :class:`~repro.sim.kernel.state.RequestArray` pop.
        """
        start = self._activation_cursor
        reqs = self.requests
        end, n = start, len(reqs)
        while end < n and reqs[end].time_s <= upto_t:
            end += 1
        if end == start:
            return []
        self._activation_cursor = end
        return reqs[start:end]

    def _activate_requests(self, upto_t: float) -> None:
        newly = self._take_due_requests(upto_t)
        for req in newly:
            self._pending.setdefault(req.segment_id, deque()).append(req)
        if newly:
            incident = self._guard.observe_requests(newly)
            if incident is not None:
                self._record_incident("hook_error", upto_t, detail=incident)
            for req in newly:
                self._immediate_pickup(req)

    def _immediate_pickup(self, req: RescueRequest) -> None:
        """A team already standing at the request's segment serves it on the
        spot — the paper's "rescue team has already arrived at the person's
        position before the actual request" case (timeliness 0)."""
        seg = self.network.segment(req.segment_id)
        for team in self._teams:
            if (
                team.state is TeamState.IDLE
                and not team.is_down
                and team.capacity_left > 0
                and team.node in (seg.u, seg.v)
            ):
                q = self._pending.get(req.segment_id)
                if not q or q[-1] is not req:
                    return
                q.pop()
                self._result.pickups.append(
                    PickupEvent(
                        request_id=req.request_id,
                        team_id=team.team_id,
                        t_s=req.time_s,
                        driving_delay_s=0.0,
                        timeliness_s=0.0,
                    )
                )
                team.passengers.append(req.request_id)
                team.total_pickups += 1
                if team.capacity_left == 0:
                    self._route_to_hospital(team, req.time_s)
                return

    def _reanchor_pending(self) -> None:
        """Move pending requests off segments the flood has since closed.

        The pick-up point is the water's edge; as the flood rises or
        recedes, the closest drivable segment to a trapped person changes.
        Without this, a request whose anchor submerges mid-day is
        unreachable for hours regardless of dispatcher.
        """
        for seg in [s for s in self._pending if s in self._closed]:
            queue = self._pending.pop(seg)
            for req in queue:
                node = self.network.landmark(req.node_id)
                candidates = self.network.nearest_segments(node.x, node.y, 64)
                new_seg = next(
                    (s for s in candidates if s not in self._closed), req.segment_id
                )
                moved = RescueRequest(
                    request_id=req.request_id,
                    person_id=req.person_id,
                    time_s=req.time_s,
                    segment_id=new_seg,
                    node_id=req.node_id,
                )
                self._pending.setdefault(new_seg, deque()).append(moved)
        # Keep FIFO-by-request-time semantics after merging queues.
        for seg, queue in self._pending.items():
            if len(queue) > 1:
                self._pending[seg] = deque(sorted(queue, key=lambda r: r.time_s))

    def _pickup_on_segment(
        self, team: RescueTeam, segment_id: int, exit_t: float
    ) -> None:
        """Pick up requests while traversing a segment.

        The pickup is stamped at the segment's *exit* time: the person is
        reached somewhere along the segment, and using the exit bound keeps
        driving delays strictly positive.
        """
        q = self._pending.get(segment_id)
        if not q:
            return
        while q and team.capacity_left > 0:
            if q[0].time_s > exit_t:
                break
            req = q.popleft()
            # Driving delay: from the moment the system first started
            # driving a team toward this request (its first response) to
            # the pickup.  Re-commands and detours in between count as
            # driving, not as queueing.  Incidental pickups with no prior
            # response fall back to the serving team's own leg.
            responded = self._first_response.get(
                req.request_id, max(team.leg_start_s, req.time_s)
            )
            self._result.pickups.append(
                PickupEvent(
                    request_id=req.request_id,
                    team_id=team.team_id,
                    t_s=exit_t,
                    driving_delay_s=max(0.0, exit_t - max(responded, req.time_s)),
                    timeliness_s=max(0.0, exit_t - req.time_s),
                )
            )
            team.passengers.append(req.request_id)
            team.total_pickups += 1

    # -- movement -----------------------------------------------------------------------

    def _hospital_leg_route(self, node: int, hosp: int) -> Route | None:
        """The routing call behind every drive-to-hospital / depot leg.

        ``hosp`` is always ``_nearest_hospital_node(node)``; the event
        kernel overrides this pair with one shared nearest-hospital field
        per closed set instead of one search per query.
        """
        return self.router.route(node, hosp, closed=self._closed)

    def _route_to_hospital(self, team: RescueTeam, t: float) -> None:
        hosp = self._nearest_hospital_node(team.node)
        if hosp is None:
            team.stop()  # marooned: wait for the flood to recede
            return
        if hosp == team.node:
            self._deliver(team, t)
            return
        route = self._hospital_leg_route(team.node, hosp)
        if route is None or route.is_trivial:
            team.stop()
            return
        team.begin_leg(
            route, self._speed_multiplier(t), self._leg_times(route, t), t,
            TeamState.TO_HOSPITAL, None,
        )

    def _deliver(self, team: RescueTeam, t: float) -> None:
        for rid in team.passengers:
            self._result.deliveries.append(
                DeliveryEvent(request_id=rid, team_id=team.team_id, t_s=t, hospital_node=team.node)
            )
        team.passengers.clear()
        team.stop()

    def _apply_command(self, team: RescueTeam, cmd: TeamCommand, t: float) -> None:
        team.pending_assignment = None
        if (
            not cmd.is_depot
            and team.state is TeamState.TO_SEGMENT
            and team.target_segment == cmd.segment_id
        ):
            return  # already en route to exactly this destination
        if cmd.is_depot:
            if team.node in self._hospital_nodes:
                team.stop()
                return
            hosp = self._nearest_hospital_node(team.node)
            if hosp is None or hosp == team.node:
                team.stop()
                return
            route = self._hospital_leg_route(team.node, hosp)
            if route is None or route.is_trivial:
                team.stop()
                return
            team.begin_leg(
                route, self._speed_multiplier(t), self._leg_times(route, t), t,
                TeamState.TO_SEGMENT, None,
            )
            return
        # Flood-aware dispatchers plan over the operable network; unaware
        # ones plan over the full map and their teams stall at the water.
        planning_closed = self._closed if self.dispatcher.flood_aware else frozenset()
        route = self.router.route_to_segment(
            team.node, cmd.segment_id, closed=planning_closed
        )
        if route is None:
            team.stop()  # destination unreachable through the flood
            return
        team.begin_leg(
            route, self._speed_multiplier(t), self._leg_times(route, t), t,
            TeamState.TO_SEGMENT, cmd.segment_id,
        )
        for req in self._pending.get(cmd.segment_id, ()):
            if req.time_s <= t:
                self._first_response.setdefault(req.request_id, t)

    def _on_arrival(self, team: RescueTeam, t_arr: float) -> None:
        if team.state is TeamState.TO_HOSPITAL:
            self._deliver(team, t_arr)
        elif team.passengers:
            team.stop()
            self._route_to_hospital(team, t_arr)
        else:
            team.stop()
        if team.pending_assignment is not None and team.state is TeamState.IDLE:
            self._apply_command(team, team.pending_assignment, t_arr)

    def _advance_team(self, team: RescueTeam, t: float) -> None:
        if team.state is TeamState.IDLE:
            if team.pending_assignment is not None:
                self._apply_command(team, team.pending_assignment, t)
            if team.state is TeamState.IDLE:
                return
        while team.is_driving and team.node_times is not None:
            idx = team.next_node_idx
            if idx >= len(team.route_nodes) or team.node_times[idx] > t:
                break
            seg = team.route_segments[idx - 1]
            if seg in self._closed:
                # The road ahead is underwater.  The driver detours locally:
                # re-route to the same destination over the operable network
                # from the stall point.  The time already spent driving into
                # the flood is the paper's "wasted time on routes with
                # unavailable road segments".
                stall_t = float(team.node_times[idx - 1])
                orig_leg_start = team.leg_start_s
                orig_state = team.state
                orig_target = team.target_segment
                team.stop()
                self._record_incident(
                    "reroute", stall_t, team_id=team.team_id,
                    detail=f"segment {seg} closed mid-leg",
                )
                if orig_state is TeamState.TO_HOSPITAL or team.passengers:
                    self._route_to_hospital(team, stall_t)
                elif orig_target is not None and orig_target not in self._closed:
                    route = self.router.route_to_segment(
                        team.node, orig_target, closed=self._closed
                    )
                    if route is not None:
                        team.begin_leg(
                            route,
                            self._speed_multiplier(stall_t),
                            self._leg_times(route, stall_t),
                            stall_t,
                            TeamState.TO_SEGMENT,
                            orig_target,
                        )
                        team.leg_start_s = orig_leg_start
                break
            node_t = float(team.node_times[idx])
            team.node = team.route_nodes[idx]
            team.next_node_idx += 1
            if team.capacity_left > 0:
                self._pickup_on_segment(team, seg, node_t)
            if team.next_node_idx >= len(team.route_nodes):
                self._on_arrival(team, node_t)
            elif team.pending_assignment is not None and team.is_assignable:
                self._apply_command(team, team.pending_assignment, node_t)
            elif team.capacity_left == 0 and team.state is TeamState.TO_SEGMENT:
                team.stop()
                self._route_to_hospital(team, node_t)

    # -- fault handling ----------------------------------------------------------------------

    def _update_breakdown(self, team: RescueTeam, t: float) -> bool:
        """Advance the team's breakdown state; True while out of service.

        A breakdown strands the team (and its passengers) where it stands
        for the repair duration; on recovery a loaded team heads for a
        hospital first, an empty one waits for re-dispatch.
        """
        if team.is_down:
            if t < team.down_until_s:
                return True
            team.repair()
            self._record_incident("repair_complete", t, team_id=team.team_id)
            if team.passengers:
                self._route_to_hospital(team, t)
        window = self.faults.breakdown_window(team.team_id, t)
        if window is not None:
            key = (team.team_id, window.start_s)
            if key not in self._handled_breakdowns:
                self._handled_breakdowns.add(key)
                team.break_down(window.end_s)
                self._record_incident(
                    "breakdown", t, team_id=team.team_id,
                    detail=f"inoperable until t={window.end_s:.0f}s "
                    f"({len(team.passengers)} stranded passengers)",
                )
                return True
        return team.is_down

    def _closed_now(self, t: float) -> frozenset[int]:
        """Flood-closed segments, plus fault-injected closures if any."""
        closed = self.network.closed_segments(self.scenario.flood, t)
        if self.faults is not None:
            extra = self.faults.closed_segments(t)
            if extra:
                closed = frozenset(closed | extra)
        return closed

    def _dispatch_cycle_action(
        self, obs: DispatchObservation, t: float, cycle_index: int
    ) -> tuple[dict[int, TeamCommand], bool]:
        """One guarded dispatcher invocation: ``(commands, ran)``.

        ``ran`` is False when an injected dispatch-center failure skipped
        the call entirely (its hooks must not run either).  Exceptions and
        compute-budget overruns inside the dispatcher yield the fallback
        policy: no new commands — teams retain their current orders and
        idle teams hold position.
        """
        if self.faults is not None and self.faults.dispatcher_fails(cycle_index):
            self._record_incident(
                "dispatcher_fallback", t, detail="injected dispatch-center failure"
            )
            return {}, False
        action, incident = self._guard.dispatch(obs)
        if incident is not None:
            self._record_incident("dispatcher_fallback", t, detail=incident)
        return action, True

    # -- main loop -------------------------------------------------------------------------------

    def _serving_count(self, action: dict[int, TeamCommand]) -> int:
        """Teams counted as serving for this cycle's sample: commanded to a
        segment this cycle, or already driving to a hospital / an assigned
        segment — minus teams a depot command just recalled."""
        serving_ids = {tid for tid, c in action.items() if not c.is_depot}
        serving_ids.update(
            tm.team_id
            for tm in self._teams
            if tm.state is TeamState.TO_HOSPITAL
            or (tm.state is TeamState.TO_SEGMENT and tm.target_segment is not None)
        )
        # A depot command overrides an in-flight serving leg.
        serving_ids -= {tid for tid, c in action.items() if c.is_depot}
        return len(serving_ids)

    def _dispatch_cycle(self, t: float) -> None:
        """One dispatch cycle: refresh closures, invoke the guarded
        dispatcher, queue its commands behind the computation delay, and
        record the serving sample."""
        self._closed = self._closed_now(t)
        self._reanchor_pending()
        obs = self._observation(t)
        action, ran = self._dispatch_cycle_action(obs, t, self._cycle_index)
        apply_at = t + self.dispatcher.computation_delay_s
        if self.faults is not None:
            apply_at += self.faults.comm_latency_s
        heapq.heappush(
            self._action_queue, (apply_at, next(self._action_counter), action)
        )
        self._result.serving_samples.append((t, self._serving_count(action)))
        if ran:
            incident = self._guard.on_cycle_end(obs)
            if incident is not None:
                self._record_incident("hook_error", t, detail=incident)
        if self._on_cycle is not None:
            self._on_cycle(self._cycle_index, t, ran)
        self._next_dispatch += self.config.dispatch_period_s
        self._cycle_index += 1

    def _deliver_command(self, team: RescueTeam, cmd: TeamCommand, apply_t: float) -> None:
        """Hand one due command to one team (or drop it on a radio outage)."""
        if self.faults is not None and self.faults.comm_blocked(team.team_id, apply_t):
            self._record_incident(
                "dropped_command", apply_t, team_id=team.team_id,
                detail="radio outage",
            )
            return
        team.pending_assignment = cmd

    def _apply_due_actions(self, t: float) -> None:
        while self._action_queue and self._action_queue[0][0] <= t:
            apply_t, _, action = heapq.heappop(self._action_queue)
            for team in self._teams:
                cmd = action.get(team.team_id)
                if cmd is None or not team.is_assignable:
                    continue
                self._deliver_command(team, cmd, apply_t)

    def _advance_teams(self, t: float) -> None:
        for team in self._teams:
            if self.faults is not None and self._update_breakdown(team, t):
                continue
            self._advance_team(team, t)

    def run(self) -> SimulationResult:
        cfg = self.config
        t = cfg.t0_s
        self._activation_cursor = 0
        self._next_dispatch = cfg.t0_s
        self._cycle_index = 0
        while t <= cfg.t1_s:
            self._activate_requests(t)
            if t >= self._next_dispatch:
                self._dispatch_cycle(t)
            self._apply_due_actions(t)
            self._advance_teams(t)
            t += cfg.step_s
        return self._result

"""Statistics helpers: empirical CDFs and Pearson correlation."""

from __future__ import annotations

import numpy as np


def cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF support: returns (sorted values, cumulative probs).

    ``p[i]`` is the fraction of samples <= ``x[i]`` — plot-ready for the
    paper's many CDF figures.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return np.zeros(0), np.zeros(0)
    x = np.sort(values)
    p = np.arange(1, len(x) + 1) / len(x)
    return x, p


def cdf_at(values: np.ndarray, q: float) -> float:
    """Fraction of samples <= q."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    return float((values <= q).mean())


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient cov(a,b) / (sigma_a * sigma_b) —
    the measure behind the paper's Table I."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length 1-D arrays")
    if a.size < 2:
        raise ValueError("need at least two samples")
    sa, sb = a.std(), b.std()
    if sa == 0 or sb == 0:
        raise ValueError("inputs must not be constant")
    return float(((a - a.mean()) * (b - b.mean())).mean() / (sa * sb))

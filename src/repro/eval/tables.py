"""Plain-text rendering of experiment series and tables.

The benchmark harness prints each figure/table the way the paper reports
it: hourly series as rows, CDFs as quantile tables, correlations as a
one-row table.
"""

from __future__ import annotations

import numpy as np


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for k, row in enumerate(cells):
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        if k == 0:
            lines.append(sep)
    return "\n".join(lines)


def format_series(name: str, values, fmt: str = "%.2f") -> str:
    """One labelled row of numbers (an hourly series, say)."""
    vals = " ".join(
        "  nan" if (isinstance(v, float) and np.isnan(v)) else fmt % v for v in values
    )
    return f"{name:>12}: {vals}"


def format_cdf_quantiles(
    name: str, values: np.ndarray, qs: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)
) -> str:
    """CDF summary: the quantiles the paper's CDF plots let you read off."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return f"{name:>12}: (empty)"
    pts = " ".join(f"p{int(q * 100):02d}={np.quantile(values, q):.1f}" for q in qs)
    return f"{name:>12}: n={values.size} {pts}"

"""Evaluation: statistics helpers, the method-comparison harness, and one
entry point per paper table/figure."""

from repro.eval.stats import cdf, cdf_at, pearson
from repro.eval.harness import ExperimentHarness, HarnessConfig, MethodRun
from repro.eval.ascii import ascii_cdf, ascii_chart
from repro.eval.experiments import DispatchExperiments, MeasurementSuite
from repro.eval.robustness import (
    RobustnessCell,
    RobustnessConfig,
    RobustnessSweep,
    format_degradation_table,
)

__all__ = [
    "DispatchExperiments",
    "ExperimentHarness",
    "HarnessConfig",
    "MeasurementSuite",
    "MethodRun",
    "RobustnessCell",
    "RobustnessConfig",
    "RobustnessSweep",
    "ascii_cdf",
    "ascii_chart",
    "cdf",
    "cdf_at",
    "format_degradation_table",
    "pearson",
]

"""One entry point per paper table/figure.

Two groups:

* **Measurement experiments** (Section III: Figs. 2-6, Table I) run the
  stage-1 pipeline on the Florence trace — cleaning, map matching,
  flow-rate derivation, delivery detection — through
  :class:`MeasurementSuite`, which caches the shared intermediates.
* **Dispatching experiments** (Section V: Figs. 9-16) run the method
  comparison through :class:`repro.eval.harness.ExperimentHarness` and the
  prediction-quality scorer.

Every function returns plain data (dicts of numpy arrays), so benches can
both assert shapes and print the same rows/series the paper reports.
"""

from __future__ import annotations

import json
import logging
import pathlib
import re
from dataclasses import dataclass, field, replace
from functools import cached_property

import numpy as np

from repro.core.artifacts import atomic_write_json, sha256_json
from repro.core.positions import PopulationFeed
from repro.data.charlotte import CharlotteScenario
from repro.dispatch.rescue_ts import TimeSeriesDemandPredictor
from repro.eval.harness import ExperimentHarness, HarnessConfig
from repro.eval.prediction import SegmentPredictionQuality, prediction_quality
from repro.eval.stats import pearson
from repro.hospitals.delivery import detect_deliveries, label_rescued
from repro.mobility.cleaning import clean_trace
from repro.mobility.flow import FlowRateTable, compute_flow_rates
from repro.mobility.generator import TraceBundle
from repro.mobility.mapmatch import map_match, reconstruct_traversals
from repro.weather.storms import SECONDS_PER_DAY, day_index


@dataclass
class MeasurementSuite:
    """Shared stage-1 pipeline products for the Section-III experiments."""

    scenario: CharlotteScenario
    bundle: TraceBundle

    @cached_property
    def clean(self):
        trace, _ = clean_trace(
            self.bundle.trace, self.scenario.partition.width_m, self.scenario.partition.height_m
        )
        return trace

    @cached_property
    def matched(self):
        return map_match(self.clean, self.scenario.network)

    @cached_property
    def flow(self) -> FlowRateTable:
        traversals = reconstruct_traversals(self.matched, self.scenario.network)
        return compute_flow_rates(traversals, self.scenario.network, self.scenario.total_hours)

    @cached_property
    def deliveries(self):
        return detect_deliveries(self.clean, self.scenario.network, self.scenario.hospitals)

    @cached_property
    def labeled_deliveries(self):
        return label_rescued(self.deliveries, self.scenario.flood)

    def day(self, label: str) -> int:
        return day_index(self.scenario.timeline, label)

    # -- Fig 2: R1/R2 hourly flow, before vs after the disaster ------------

    def fig2_flow_before_after(
        self,
        regions: tuple[int, int] = (1, 2),
        before_label: str = "Aug 25",
        after_label: str = "Sep 20",
    ) -> dict[str, np.ndarray]:
        """Hourly region flow on the paper's before/after days."""
        out: dict[str, np.ndarray] = {}
        for rid in regions:
            out[f"R{rid} {before_label}"] = self.flow.region_hour_of_day(
                rid, self.day(before_label)
            )
            out[f"R{rid} {after_label}"] = self.flow.region_hour_of_day(
                rid, self.day(after_label)
            )
        return out

    # -- Fig 3: CDF of per-segment flow difference --------------------------

    def fig3_flow_diff(
        self, before_label: str = "Aug 25", after_label: str = "Sep 20"
    ) -> np.ndarray:
        """|before - after| day-average flow per segment (CDF support)."""
        before = self.flow.segment_day_average(self.day(before_label))
        after = self.flow.segment_day_average(self.day(after_label))
        return np.abs(before - after)

    # -- Table I: factor/flow correlations -----------------------------------

    def table1_correlations(self) -> dict[str, float]:
        """Pearson correlation of disaster-normalized flow with each factor.

        One data point per region, as in the paper: the region's average
        flow over the disaster window (normalized by its own pre-disaster
        baseline, so the downtown's larger absolute traffic does not
        confound the comparison) against the region's disaster factors
        (Fig. 1 values).
        """
        timeline = self.scenario.timeline
        part = self.scenario.partition
        first = int(timeline.storm_start_day)
        last = min(
            timeline.total_days - 1,
            int(timeline.storm_end_day + timeline.crest_lag_days) + 2,
        )
        baseline_days = list(range(max(0, first - 7), first))

        ratios, precs, winds, alts = [], [], [], []
        for rid in part.region_ids:
            base = float(
                np.mean([self.flow.region_day_average(rid, d) for d in baseline_days])
            )
            if base <= 0:
                continue
            window = np.mean(
                [self.flow.region_day_average(rid, d) for d in range(first, last + 1)]
            )
            profile = part.profile(rid)
            ratios.append(window / base)
            precs.append(profile.precipitation_mm)
            winds.append(profile.wind_mph)
            alts.append(profile.altitude_m)
        flow = np.array(ratios)
        return {
            "precipitation": pearson(flow, np.array(precs)),
            "wind": pearson(flow, np.array(winds)),
            "altitude": pearson(flow, np.array(alts)),
        }

    # -- Fig 4: region distribution of rescued people --------------------------

    def fig4_rescued_by_region(self) -> dict[int, int]:
        counts: dict[int, int] = {rid: 0 for rid in self.scenario.partition.region_ids}
        for r in self.bundle.rescues:
            counts[r.region_id] += 1
        return counts

    # -- Fig 5: region flow before/during/after ----------------------------------

    def fig5_flow_phases(
        self,
        before: tuple[str, str] = ("Sep 10", "Sep 13"),
        during: tuple[str, str] = ("Sep 14", "Sep 16"),
        after: tuple[str, str] = ("Sep 17", "Sep 19"),
    ) -> dict[int, dict[str, float]]:
        phases = {"before": before, "during": during, "after": after}
        out: dict[int, dict[str, float]] = {}
        for rid in self.scenario.partition.region_ids:
            out[rid] = {}
            for phase, (lo, hi) in phases.items():
                ds = range(self.day(lo), self.day(hi) + 1)
                out[rid][phase] = float(
                    np.mean([self.flow.region_day_average(rid, d) for d in ds])
                )
        return out

    # -- Fig 6: hospital deliveries per day -----------------------------------------

    def fig6_deliveries_per_day(self) -> dict[str, np.ndarray]:
        """Detected deliveries (and the rescued subset) per scenario day."""
        n_days = self.scenario.timeline.total_days
        total = np.zeros(n_days)
        rescued = np.zeros(n_days)
        for ev, is_rescued in self.labeled_deliveries:
            d = min(n_days - 1, int(ev.arrival_time_s // SECONDS_PER_DAY))
            total[d] += 1
            if is_rescued:
                rescued[d] += 1
        return {"total": total, "rescued": rescued}


@dataclass
class DispatchExperiments:
    """Section-V experiments over an :class:`ExperimentHarness`."""

    harness: ExperimentHarness
    methods: tuple[str, ...] = ("MobiRescue", "Rescue", "Schedule")

    def _runs(self):
        return {name: self.harness.run_method(name) for name in self.methods}

    # -- Fig 9 / Fig 10 --------------------------------------------------------

    def fig9_served_per_hour(self) -> dict[str, np.ndarray]:
        return {n: r.metrics.timely_served_per_hour() for n, r in self._runs().items()}

    def fig10_served_per_team(self) -> dict[str, np.ndarray]:
        return {n: r.metrics.served_per_team() for n, r in self._runs().items()}

    # -- Fig 11 / Fig 12 ----------------------------------------------------------

    def fig11_delay_per_hour(self) -> dict[str, np.ndarray]:
        return {n: r.metrics.avg_delay_per_hour() for n, r in self._runs().items()}

    def fig12_delay_values(self) -> dict[str, np.ndarray]:
        return {n: r.metrics.driving_delays() for n, r in self._runs().items()}

    # -- Fig 13 ----------------------------------------------------------------------

    def fig13_timeliness_values(self) -> dict[str, np.ndarray]:
        return {n: r.metrics.timeliness_values() for n, r in self._runs().items()}

    # -- Fig 14 -----------------------------------------------------------------------

    def fig14_serving_teams_per_hour(self) -> dict[str, np.ndarray]:
        return {n: r.metrics.serving_teams_per_hour() for n, r in self._runs().items()}

    # -- Fig 15 / Fig 16 ------------------------------------------------------------------

    @cached_property
    def _prediction_quality(self) -> dict[str, SegmentPredictionQuality]:
        return self._compute_prediction_quality()

    def prediction_quality(self) -> dict[str, SegmentPredictionQuality]:
        return self._prediction_quality

    def _compute_prediction_quality(self) -> dict[str, SegmentPredictionQuality]:
        """Per-segment prediction accuracy/precision, MobiRescue vs Rescue."""
        h = self.harness
        system = h.system()
        predictor = system.trained.predictor.clone_for(h.florence_scenario)
        clean, _ = clean_trace(
            h.florence_bundle.trace,
            h.florence_scenario.partition.width_m,
            h.florence_scenario.partition.height_m,
        )
        matched = map_match(clean, h.florence_scenario.network)
        feed = PopulationFeed(matched, cache_size=32)
        ts = TimeSeriesDemandPredictor()
        t0, _ = h.eval_window
        for r in h.florence_bundle.rescues:
            if r.request_time_s < t0:
                ts.record(r.request_time_s, r.trap_segment)
        return prediction_quality(
            h.florence_scenario,
            h.florence_bundle.rescues,
            feed,
            predictor,
            ts,
            h.eval_day,
        )

    def fig15_accuracies(self) -> dict[str, np.ndarray]:
        return {m: q.accuracies for m, q in self.prediction_quality().items()}

    def fig16_precisions(self) -> dict[str, np.ndarray]:
        return {m: q.precisions for m, q in self.prediction_quality().items()}


# -- resumable sweeps ----------------------------------------------------------

logger = logging.getLogger("repro.eval.experiments")


class SweepStore:
    """Durable per-cell results for resumable experiment sweeps.

    One JSON file per cell, written atomically with an embedded SHA-256 of
    the cell payload.  A killed sweep leaves only complete cells behind;
    on resume, valid cells are reused and everything else — missing,
    torn or bit-flipped — is simply re-run, so corruption can never poison
    an aggregate table.
    """

    FORMAT = "repro-sweep-cell"

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        slug = re.sub(r"[^A-Za-z0-9._=,-]+", "_", key)
        return self.root / f"{slug}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def get(self, key: str) -> dict | None:
        """The stored cell for ``key``, or ``None`` when absent/invalid."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            wrapper = json.loads(path.read_text())
        except (ValueError, OSError) as exc:
            logger.warning("discarding unreadable sweep cell %s: %s", path, exc)
            return None
        if (
            not isinstance(wrapper, dict)
            or wrapper.get("format") != self.FORMAT
            or wrapper.get("key") != key
            or not isinstance(wrapper.get("cell"), dict)
        ):
            logger.warning("discarding malformed sweep cell %s", path)
            return None
        if sha256_json(wrapper["cell"]) != wrapper.get("sha256"):
            logger.warning("discarding corrupt sweep cell %s (digest mismatch)", path)
            return None
        return wrapper["cell"]

    def put(self, key: str, cell: dict) -> None:
        atomic_write_json(
            self._path(key),
            {
                "format": self.FORMAT,
                "key": key,
                "sha256": sha256_json(cell),
                "cell": cell,
            },
        )


@dataclass(frozen=True)
class ComparisonSweepConfig:
    """The Section-V method comparison as a resumable (method × seed) sweep."""

    methods: tuple[str, ...] = ("MobiRescue", "Rescue", "Schedule")
    seeds: tuple[int, ...] = (0,)
    harness: HarnessConfig = field(default_factory=HarnessConfig)

    def __post_init__(self) -> None:
        if not self.methods or not self.seeds:
            raise ValueError("need at least one method and one seed")


class ComparisonSweep:
    """Run the dispatching comparison with per-cell result persistence.

    With a :class:`SweepStore`, each completed (method, seed) cell is
    committed durably the moment it finishes; a killed sweep re-runs only
    the uncompleted cells and produces the same aggregate table as an
    uninterrupted run.  Cells already in the store also skip the expensive
    MobiRescue training entirely.
    """

    def __init__(
        self,
        florence,
        michael,
        config: ComparisonSweepConfig | None = None,
        store: SweepStore | None = None,
    ) -> None:
        self.florence = florence
        self.michael = michael
        self.config = config or ComparisonSweepConfig()
        self.store = store

    def run(self, progress=None) -> list[dict]:
        """All cells, seeds outer, methods inner (stable order)."""
        cfg = self.config
        cells: list[dict] = []
        trained = None
        for seed in cfg.seeds:
            harness: ExperimentHarness | None = None
            for method in cfg.methods:
                key = f"method={method},seed={seed}"
                cached = self.store.get(key) if self.store is not None else None
                if cached is not None:
                    if progress:
                        progress(f"reusing stored cell {key}")
                    cells.append(cached)
                    continue
                if harness is None:
                    harness = ExperimentHarness(
                        self.florence,
                        self.michael,
                        replace(cfg.harness, seed=seed),
                    )
                    if trained is not None:
                        # Training depends only on the MobiRescue config,
                        # not the evaluation seed — train once per sweep.
                        harness.adopt_system(trained)
                if progress:
                    progress(f"running {key}...")
                cell = harness.summary_cell(method)
                if method == "MobiRescue":
                    trained = harness.system()
                if self.store is not None:
                    self.store.put(key, cell)
                cells.append(cell)
        return cells


def format_comparison_cells(cells: list[dict]) -> str:
    """The comparison cells as the Figs 9-14 summary table (one row per
    method × seed, in sweep order)."""
    from repro.eval.tables import format_table

    def _minutes(seconds: float) -> str:
        return f"{seconds / 60:.1f}" if np.isfinite(seconds) else "-"

    rows = [
        [
            c["method"],
            c["seed"],
            c["served"],
            c["timely"],
            _minutes(c["median_delay_s"]),
            _minutes(c["mean_timeliness_s"]),
            f"{c['avg_serving']:.0f}" if np.isfinite(c["avg_serving"]) else "-",
        ]
        for c in cells
    ]
    return format_table(
        [
            "method", "seed", "served", "timely",
            "med delay (min)", "mean timeliness (min)", "avg serving",
        ],
        rows,
        title="Method comparison (Figs 9-14 summary)",
    )

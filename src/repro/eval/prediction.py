"""Per-road-segment prediction quality (paper Figs. 15-16).

Both prediction-based methods are scored on the evaluation day: every hour,
each method predicts which of the people currently on a road segment will
need rescue; the ground truth is the requests actually raised there.  Per
segment, the hourly person-level confusion counts accumulate into the
accuracy ``(TP+TN)/(TP+TN+FP+FN)`` and precision ``TP/(TP+FP)`` whose CDFs
the paper plots.

* MobiRescue predicts per person through the SVM (Eq. 1);
* "Rescue" predicts per segment through its time-series demand average,
  capped by the number of people present.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.positions import PopulationFeed
from repro.core.predictor import RequestPredictor
from repro.data.charlotte import CharlotteScenario
from repro.dispatch.rescue_ts import TimeSeriesDemandPredictor
from repro.mobility.trace import RescueRecord
from repro.ml.metrics import ClassificationCounts
from repro.weather.storms import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass
class SegmentPredictionQuality:
    """Per-segment accuracy/precision arrays for one method."""

    method: str
    accuracies: np.ndarray
    precisions: np.ndarray

    @property
    def mean_accuracy(self) -> float:
        return float(self.accuracies.mean()) if self.accuracies.size else 0.0

    @property
    def mean_precision(self) -> float:
        return float(self.precisions.mean()) if self.precisions.size else 0.0


@dataclass
class _Counts:
    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def to_counts(self) -> ClassificationCounts:
        return ClassificationCounts(tp=self.tp, fp=self.fp, tn=self.tn, fn=self.fn)


def prediction_quality(
    scenario: CharlotteScenario,
    rescues: list[RescueRecord],
    feed: PopulationFeed,
    svm_predictor: RequestPredictor,
    ts_predictor: TimeSeriesDemandPredictor,
    day: int,
) -> dict[str, SegmentPredictionQuality]:
    """Score both predictors over the 24 hours of the evaluation day.

    Ground truth follows the paper's Section III-B2 person-level rescue
    decision: a person on a segment is a true positive target while they
    are trapped-or-will-be-trapped and not yet delivered.  Counts are
    matched at the (hour, segment) level: predicted positives against
    actually-needing-rescue persons present.
    """
    net = scenario.network
    node_ids = net.landmark_ids()
    node_segment = {n: net.nearest_segment(*net.landmark(n).xy) for n in node_ids}
    t0 = day * SECONDS_PER_DAY
    needs_rescue_window = {
        r.person_id: (r.trap_time_s, r.delivery_time_s) for r in rescues
    }

    per_segment: dict[str, dict[int, _Counts]] = {
        "MobiRescue": defaultdict(_Counts),
        "Rescue": defaultdict(_Counts),
    }

    for hour in range(24):
        t = t0 + (hour + 0.5) * SECONDS_PER_HOUR
        positions = feed(t)
        present: dict[int, int] = defaultdict(int)
        actual: dict[int, int] = defaultdict(int)
        for pid, node in positions.items():
            seg = node_segment[node]
            present[seg] += 1
            window = needs_rescue_window.get(pid)
            # A person counts as a rescue target from the storm's start (the
            # predictor is asked who *will* need rescue) until delivered.
            if window is not None and t <= window[1]:
                actual[seg] += 1

        # MobiRescue: SVM decision per person, aggregated per segment.
        svm_dist = svm_predictor.predict_request_distribution(positions, t)
        # Rescue: time-series demand per segment, capped by people present.
        ts_dist_raw = ts_predictor.predict(t)
        ts_dist = {
            s: max(1, int(np.ceil(v))) for s, v in ts_dist_raw.items() if v >= 0.4
        }

        for method, dist in (("MobiRescue", svm_dist), ("Rescue", ts_dist)):
            for seg, n_present in present.items():
                pred = min(int(dist.get(seg, 0)), n_present)
                act = min(actual.get(seg, 0), n_present)
                c = per_segment[method][seg]
                c.tp += min(pred, act)
                c.fp += max(0, pred - act)
                c.fn += max(0, act - pred)
                c.tn += n_present - max(pred, act)

    out: dict[str, SegmentPredictionQuality] = {}
    for method, table in per_segment.items():
        accs, precs = [], []
        for counts in table.values():
            c = counts.to_counts()
            if c.total == 0:
                continue
            accs.append(c.accuracy)
            # Precision is scored on every segment where the method made or
            # should have made a prediction: pure true-negative segments are
            # uninformative, while a segment whose targets were never
            # predicted (all FN) scores 0.
            if c.tp + c.fp + c.fn > 0:
                precs.append(c.precision)
        out[method] = SegmentPredictionQuality(
            method=method,
            accuracies=np.array(accs),
            precisions=np.array(precs),
        )
    return out

"""Method-comparison harness for the dispatching experiments (Figs. 9-14).

Runs MobiRescue, Rescue, Schedule (and optionally Nearest) over the same
evaluation window — the paper's Sep 16, 24 hours — with the same request
stream, fleet size and initial conditions, and hands back per-method
metrics.  The fleet size follows the paper's rule: "the number of
ambulances is equal to the maximum daily number of requests over all days
during the hurricane."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MobiRescueConfig
from repro.core.system import MobiRescueSystem
from repro.data.charlotte import CharlotteScenario
from repro.dispatch.base import Dispatcher
from repro.dispatch.nearest import NearestDispatcher
from repro.dispatch.rescue_ts import RescueTsDispatcher
from repro.dispatch.schedule import ScheduleDispatcher
from repro.mobility.generator import TraceBundle
from repro.sim.engine import SimulationConfig, SimulationResult
from repro.sim.kernel import build_simulator
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index


@dataclass(frozen=True)
class HarnessConfig:
    """Evaluation parameters shared across methods."""

    eval_day_label: str = "Sep 16"
    num_teams: int | None = None  # None -> the paper's max-daily-requests rule
    team_capacity: int = 5
    dispatch_period_s: float = 300.0
    step_s: float = 60.0
    mobirescue_episodes: int = 6
    mobirescue_config: MobiRescueConfig = field(default_factory=MobiRescueConfig)
    seed: int = 0
    #: Named fault profile (``repro.faults``) injected into every run;
    #: ``"none"`` keeps the fault layer disabled and zero-cost.
    fault_profile: str = "none"
    #: Wall-clock budget per dispatcher invocation (None disables).
    dispatch_budget_s: float | None = None


@dataclass
class MethodRun:
    """One method's simulation outcome."""

    name: str
    result: SimulationResult
    metrics: SimulationMetrics
    dispatcher: Dispatcher


class ExperimentHarness:
    """Shared setup + memoized per-method runs."""

    METHODS = ("MobiRescue", "Rescue", "Schedule", "Nearest")

    def __init__(
        self,
        florence: tuple[CharlotteScenario, TraceBundle],
        michael: tuple[CharlotteScenario, TraceBundle],
        config: HarnessConfig | None = None,
    ) -> None:
        self.florence_scenario, self.florence_bundle = florence
        self.michael_scenario, self.michael_bundle = michael
        self.config = config or HarnessConfig()
        self._system: MobiRescueSystem | None = None
        self._runs: dict[str, MethodRun] = {}

    # -- shared setup ---------------------------------------------------------

    @property
    def eval_day(self) -> int:
        return day_index(self.florence_scenario.timeline, self.config.eval_day_label)

    @property
    def eval_window(self) -> tuple[float, float]:
        d = self.eval_day
        return d * SECONDS_PER_DAY, (d + 1) * SECONDS_PER_DAY

    def eval_requests(self):
        t0, t1 = self.eval_window
        return remap_to_operable(
            requests_from_rescues(self.florence_bundle.rescues, t0, t1),
            self.florence_scenario.network,
            self.florence_scenario.flood,
        )

    def num_teams(self) -> int:
        """The paper's fleet-size rule, unless overridden."""
        if self.config.num_teams is not None:
            return self.config.num_teams
        per_day: dict[int, int] = {}
        for r in self.florence_bundle.rescues:
            d = int(r.request_time_s // SECONDS_PER_DAY)
            per_day[d] = per_day.get(d, 0) + 1
        return max(per_day.values()) if per_day else 10

    def system(self) -> MobiRescueSystem:
        """The trained MobiRescue system (trained once, on Michael)."""
        if self._system is None:
            self._system = MobiRescueSystem.train(
                self.michael_scenario,
                self.michael_bundle,
                config=self.config.mobirescue_config,
                episodes=self.config.mobirescue_episodes,
                num_teams=min(40, self.num_teams()),
            )
        return self._system

    def adopt_system(self, system: MobiRescueSystem) -> None:
        """Reuse an already-trained system (robustness sweeps train once
        and evaluate the same models under every fault profile)."""
        self._system = system

    def fault_injector(self):
        """A fresh injector for this harness's profile, or ``None``."""
        from repro.faults import make_injector

        t0, t1 = self.eval_window
        return make_injector(
            self.config.fault_profile, t0, t1, seed=self.config.seed
        )

    # -- dispatch construction --------------------------------------------------

    def make_dispatcher(self, name: str) -> Dispatcher:
        cap = self.config.team_capacity
        if name == "MobiRescue":
            return self.system().deploy(self.florence_scenario, self.florence_bundle)
        if name == "Schedule":
            return ScheduleDispatcher(team_capacity=cap)
        if name == "Rescue":
            disp = RescueTsDispatcher(team_capacity=cap)
            # Seed its time series with the disaster days preceding the
            # evaluation window, as its design requires.
            t0, _ = self.eval_window
            history = requests_from_rescues(self.florence_bundle.rescues, 0.0, t0)
            disp.seed_history(history)
            return disp
        if name == "Nearest":
            return NearestDispatcher()
        raise ValueError(f"unknown method {name!r} (choose from {self.METHODS})")

    # -- runs ------------------------------------------------------------------------

    def run_method(self, name: str) -> MethodRun:
        if name in self._runs:
            return self._runs[name]
        t0, t1 = self.eval_window
        dispatcher = self.make_dispatcher(name)
        injector = self.fault_injector()
        if injector is not None and injector.profile.gps.enabled and hasattr(
            dispatcher, "positions_fn"
        ):
            # GPS dropout degrades the dispatch center's population feed —
            # only MobiRescue senses positions, so only it is affected.
            from repro.core.positions import DegradedPositionFeed

            dispatcher.positions_fn = DegradedPositionFeed(
                dispatcher.positions_fn, injector
            )
        sim = build_simulator(
            self.florence_scenario,
            self.eval_requests(),
            dispatcher,
            SimulationConfig(
                t0_s=t0,
                t1_s=t1,
                num_teams=self.num_teams(),
                team_capacity=self.config.team_capacity,
                dispatch_period_s=self.config.dispatch_period_s,
                step_s=self.config.step_s,
                seed=self.config.seed,
                dispatch_budget_s=self.config.dispatch_budget_s,
            ),
            faults=injector,
        )
        result = sim.run()
        run = MethodRun(
            name=name, result=result, metrics=SimulationMetrics(result), dispatcher=dispatcher
        )
        self._runs[name] = run
        return run

    def run_all(self, methods: tuple[str, ...] = ("MobiRescue", "Rescue", "Schedule")):
        return {name: self.run_method(name) for name in methods}

    # -- per-cell result persistence -------------------------------------------

    def cell_key(self, name: str) -> str:
        """Stable identity of one (method, profile, seed) sweep cell, used
        as the durable-store key by resumable sweeps."""
        cfg = self.config
        return f"method={name},profile={cfg.fault_profile},seed={cfg.seed}"

    def summary_cell(self, name: str) -> dict:
        """One method's outcome as a JSON-able summary dict.

        This is the per-cell unit resumable sweeps persist: everything the
        aggregate tables need, none of the (unserializable) simulator
        state.  Values are plain Python scalars so a store round trip is
        exact.
        """
        run = self.run_method(name)
        m = run.metrics
        delays = m.driving_delays()
        timeliness = m.timeliness_values()
        serving = [n for _, n in run.result.serving_samples]
        return {
            "method": name,
            "profile": self.config.fault_profile,
            "seed": self.config.seed,
            "requests": len(self.eval_requests()),
            "served": int(run.result.num_served),
            "timely": int(m.total_timely_served),
            "service_rate": float(m.service_rate),
            "median_delay_s": float(np.median(delays)) if len(delays) else float("nan"),
            "mean_timeliness_s": (
                float(np.mean(timeliness)) if len(timeliness) else float("nan")
            ),
            "avg_serving": float(np.mean(serving)) if serving else float("nan"),
            "fallback_activations": int(m.fallback_activations),
            "dropped_commands": int(m.dropped_commands),
            "breakdowns": int(m.breakdowns),
            "reroutes": int(m.reroutes),
            "incidents_dropped": int(m.incidents_dropped),
        }

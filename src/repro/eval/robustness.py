"""Robustness evaluation: dispatchers under fault-injection profiles.

Sweeps fault severity (``repro.faults`` profiles) × dispatching methods
over the same evaluation window and reports a degradation table: how
served requests, delays and timeliness erode as the disaster degrades the
infrastructure the dispatch center depends on, plus the degradation
events themselves (fallback activations, dropped commands, breakdowns,
reroutes).

The MobiRescue models are trained once and evaluated under every
profile — the point is how a fixed policy *degrades*, not how it would
train under faults.

Typical use::

    from repro.eval.robustness import RobustnessSweep, format_degradation_table

    sweep = RobustnessSweep(florence, michael)
    cells = sweep.run()
    print(format_degradation_table(cells))

or from the CLI: ``python -m repro robustness --profiles none,severe``.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.eval.experiments import SweepStore
from repro.eval.harness import ExperimentHarness, HarnessConfig, MethodRun
from repro.eval.tables import format_table

logger = logging.getLogger("repro.eval.robustness")


@dataclass(frozen=True)
class RobustnessConfig:
    """One sweep: which profiles, which methods, shared harness params."""

    profiles: tuple[str, ...] = ("none", "mild", "severe")
    methods: tuple[str, ...] = ("MobiRescue", "Rescue", "Schedule", "Nearest")
    harness: HarnessConfig = field(default_factory=HarnessConfig)

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("need at least one fault profile")
        if not self.methods:
            raise ValueError("need at least one method")


@dataclass(frozen=True)
class RobustnessCell:
    """One (profile, method) outcome of the sweep."""

    profile: str
    method: str
    served: int
    timely: int
    service_rate: float
    median_delay_s: float
    mean_timeliness_s: float
    fallback_activations: int
    dropped_commands: int
    breakdowns: int
    reroutes: int
    #: Incidents shed by the bounded ring (default keeps stored cells from
    #: older sweeps loadable).
    incidents_dropped: int = 0


def _cell(profile: str, run: MethodRun) -> RobustnessCell:
    m = run.metrics
    delays = m.driving_delays()
    timeliness = m.timeliness_values()
    return RobustnessCell(
        profile=profile,
        method=run.name,
        served=run.result.num_served,
        timely=m.total_timely_served,
        service_rate=m.service_rate,
        median_delay_s=float(np.median(delays)) if len(delays) else float("nan"),
        mean_timeliness_s=float(np.mean(timeliness)) if len(timeliness) else float("nan"),
        fallback_activations=m.fallback_activations,
        dropped_commands=m.dropped_commands,
        breakdowns=m.breakdowns,
        reroutes=m.reroutes,
        incidents_dropped=m.incidents_dropped,
    )


class RobustnessSweep:
    """Run every method under every fault profile, same window and seed."""

    def __init__(
        self,
        florence,
        michael,
        config: RobustnessConfig | None = None,
    ) -> None:
        self.florence = florence
        self.michael = michael
        self.config = config or RobustnessConfig()

    def run(
        self, progress=None, store: SweepStore | None = None
    ) -> list[RobustnessCell]:
        """All (profile, method) cells, profiles in configured order.

        ``progress`` is an optional ``callable(str)`` invoked before each
        run (the CLI routes it to stderr).  With a
        :class:`repro.eval.experiments.SweepStore`, every completed cell
        is committed durably as it finishes and valid stored cells are
        reused instead of re-run — a killed sweep resumed against the
        same store executes only the uncompleted cells (skipping even the
        MobiRescue training when all its cells are stored) and yields the
        same table as an uninterrupted run.
        """
        cfg = self.config
        cells: list[RobustnessCell] = []
        trained = None
        for profile in cfg.profiles:
            harness: ExperimentHarness | None = None
            for method in cfg.methods:
                key = f"profile={profile},method={method},seed={cfg.harness.seed}"
                cached = store.get(key) if store is not None else None
                if cached is not None:
                    if progress:
                        progress(f"reusing stored cell {key}")
                    cells.append(RobustnessCell(**cached))
                    continue
                if harness is None:
                    harness = ExperimentHarness(
                        self.florence,
                        self.michael,
                        replace(cfg.harness, fault_profile=profile),
                    )
                    if trained is not None:
                        harness.adopt_system(trained)
                if method == "MobiRescue" and trained is None:
                    if progress:
                        progress("training MobiRescue...")
                    trained = harness.system()
                if progress:
                    progress(f"running {method} under {profile!r}...")
                run = harness.run_method(method)
                cell = _cell(profile, run)
                if store is not None:
                    store.put(key, asdict(cell))
                cells.append(cell)
                logger.info(
                    "profile=%s method=%s served=%d timely=%d fallbacks=%d "
                    "dropped=%d breakdowns=%d reroutes=%d",
                    profile, method, cell.served, cell.timely,
                    cell.fallback_activations, cell.dropped_commands,
                    cell.breakdowns, cell.reroutes,
                )
        return cells


def format_degradation_table(cells: list[RobustnessCell]) -> str:
    """The sweep as one fixed-width degradation table."""

    def _minutes(seconds: float) -> str:
        return f"{seconds / 60:.1f}" if np.isfinite(seconds) else "-"

    rows = [
        [
            c.profile,
            c.method,
            c.served,
            c.timely,
            f"{c.service_rate:.2f}",
            _minutes(c.median_delay_s),
            _minutes(c.mean_timeliness_s),
            c.fallback_activations,
            c.dropped_commands,
            c.breakdowns,
            c.reroutes,
            c.incidents_dropped,
        ]
        for c in cells
    ]
    return format_table(
        [
            "profile", "method", "served", "timely", "rate",
            "med delay (min)", "mean timeliness (min)",
            "fallbacks", "dropped cmds", "breakdowns", "reroutes",
            "inc dropped",
        ],
        rows,
        title="Degradation under fault injection",
    )

"""ASCII rendering of experiment series — terminal-friendly "figures".

Matplotlib is unavailable offline, so the CLI and examples render the
paper's line/CDF figures as fixed-height character charts.  One glyph per
series, shared axes, a numeric legend.
"""

from __future__ import annotations

import numpy as np

GLYPHS = "*o+x#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, height: int) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    rows = np.round((values - lo) / span * (height - 1)).astype(int)
    return np.clip(rows, 0, height - 1)


def ascii_chart(
    series: dict[str, np.ndarray],
    height: int = 12,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render aligned series as a character chart.

    All series must share the same x grid (their indices).  NaNs are
    skipped.  Returns a multi-line string.
    """
    if not series:
        raise ValueError("need at least one series")
    if height < 3:
        raise ValueError("height must be at least 3")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    width = lengths.pop()
    if width == 0:
        raise ValueError("series are empty")

    stacked = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    finite = stacked[np.isfinite(stacked)]
    if finite.size == 0:
        raise ValueError("series contain no finite values")
    lo, hi = float(finite.min()), float(finite.max())
    if lo == hi:
        lo, hi = lo - 1.0, hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, values), glyph in zip(series.items(), GLYPHS):
        values = np.asarray(values, dtype=float)
        ok = np.isfinite(values)
        rows = _scale(values[ok], lo, hi, height)
        for x, r in zip(np.nonzero(ok)[0], rows):
            grid[height - 1 - int(r)][int(x)] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{hi:.4g}"
    bottom_label = f"{lo:.4g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    if x_label:
        lines.append(" " * (margin + 2) + x_label)
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), GLYPHS)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


def ascii_cdf(
    samples: dict[str, np.ndarray],
    points: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render empirical CDFs of sample sets on a shared x grid."""
    if not samples:
        raise ValueError("need at least one sample set")
    finite = np.concatenate(
        [np.asarray(v, dtype=float) for v in samples.values() if len(v)]
    )
    if finite.size == 0:
        raise ValueError("sample sets are empty")
    xs = np.linspace(float(finite.min()), float(finite.max()), points)
    series = {}
    for name, vals in samples.items():
        vals = np.sort(np.asarray(vals, dtype=float))
        if vals.size == 0:
            series[name] = np.full(points, np.nan)
        else:
            series[name] = np.searchsorted(vals, xs, side="right") / vals.size
    chart = ascii_chart(series, height=height, title=title, y_label="P", x_label="")
    return chart + f"\n  x: {xs[0]:.4g} .. {xs[-1]:.4g}"

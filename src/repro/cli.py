"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``measure``
    The paper's Section-III measurement study on the Florence dataset
    (Figs. 2-6, Table I).

``compare``
    The Section-V dispatching comparison over the Sep 16 evaluation day
    (Figs. 9-14 summary table).

``predict``
    Train the SVM request predictor on Michael, score it on Florence
    (Figs. 15-16 summary).

``simulate``
    Train and deploy the full MobiRescue system, optionally saving the
    trained models with ``--save``.

``train``
    Crash-safe, checkpointed MobiRescue training under the supervisor:
    ``--checkpoint-dir`` commits resumable state every episode, and
    ``--resume`` continues a killed run bit-identically from the latest
    valid checkpoint (damaged checkpoints are quarantined).

``experiments``
    The method-comparison sweep with per-cell result persistence:
    completed cells land in ``--results-dir`` as they finish, and
    ``--resume`` re-runs only the uncompleted ones.

``robustness``
    Sweep fault-injection profiles × dispatchers and print the
    degradation table (served/delay/timeliness vs. fault severity plus
    fallback-activation, dropped-command, breakdown and reroute counts).
    Also resumable with ``--results-dir``/``--resume``.

``chaos``
    The resilience chaos harness (``docs/SERVICE.md``): per seed, run the
    plain engine, a clean guarded service run (asserted bit-identical),
    and a fault-composed chaos run, then check the invariants — no tick
    skipped, no exception escaped, served count within the degradation
    factor.  Nonzero exit on any violation; ``--out`` writes the JSON
    report durably.  A ``shard-*`` profile (``shard-kill``,
    ``shard-stall``, ``shard-skew``, ``shard-blackout``) runs the
    sharded-topology harness instead: clean sharded run bit-identical to
    the unsharded service, failover within budget, exact per-shard
    record accounting.  A ``worker-*`` profile (``worker-kill``,
    ``worker-stall``, ``worker-blackout``) runs the parallel-rollout
    harness: real worker process deaths mid-episode, zero lost episodes,
    poison episodes quarantined with incident records, and the merged
    output bit-identical to the serial path.

``rollouts``
    Fault-tolerant parallel episode rollouts (``docs/ROLLOUTS.md``):
    ``--mode eval`` fans dispatch-simulation episodes across supervised
    worker processes, ``--mode train`` collects DQN experience for the
    shared replay buffer.  ``--results-dir``/``--resume`` checkpoint per
    episode through the artifact layer; ``--verify-serial`` additionally
    runs the serial path and fails unless the merged outputs are
    bit-identical.

``loadgen``
    The deterministic million-user load harness: replays synthetic GPS
    records against the sharded ingest layer on the manual clock and
    emits per-shard throughput and p50/p95/p99 latency percentiles as a
    durable ``LOADGEN_<date>.json``.  ``--quick`` runs the CI-sized
    campaign.

``service-report``
    Render the unified service-health report (breaker snapshots,
    per-shard quarantine reason counts, incident rings, supervisor
    failovers) from a chaos or loadgen artifact, as text or atomic JSON.

``lint``
    Run reprolint, the repo-invariant static analyzer (determinism,
    durability, exception hygiene, ordering hazards), over the package
    tree or explicit paths.  ``--format json`` emits machine-readable
    findings; see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.

``bench``
    The hot-path microbenchmark suite (routing cache vs per-call
    Dijkstra, batched vs per-person SVM prediction, full simulation
    ticks, DQN training steps).  Emits a durable ``BENCH_<date>.json``
    (override with ``--out``); ``--quick`` runs the CI-sized workload.
    See ``docs/PERFORMANCE.md``.

All commands accept ``--population`` (default 800), ``--seed`` and
``--verbose`` (stream ``repro.*`` logs — incident and degradation events
included — to stderr).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--population", type=int, default=800,
        help="synthetic population size (paper: 8590)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--episodes", type=int, default=4, help="MobiRescue training episodes"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="stream repro.* logs (incident/degradation events) to stderr",
    )


def _datasets(args):
    from repro.data import build_florence_dataset, build_michael_dataset

    florence = build_florence_dataset(population_size=args.population)
    michael = build_michael_dataset(population_size=args.population)
    return florence, michael


def cmd_measure(args) -> int:
    from repro.eval.experiments import MeasurementSuite
    from repro.eval.tables import format_series, format_table
    from repro.weather.storms import day_label

    florence, _ = _datasets(args)
    suite = MeasurementSuite(*florence)

    print("--- Fig 2: R1/R2 hourly flow, before vs after ---")
    for name, series in suite.fig2_flow_before_after().items():
        print(format_series(name, series))

    print("\n--- Table I: factor/flow correlations ---")
    corr = suite.table1_correlations()
    print(format_table(
        ["factor", "measured", "paper"],
        [
            ["precipitation", corr["precipitation"], -0.897],
            ["wind speed", corr["wind"], -0.781],
            ["altitude", corr["altitude"], 0.739],
        ],
    ))

    print("\n--- Fig 4: rescued per region ---")
    counts = suite.fig4_rescued_by_region()
    print(format_table(["region", "rescued"],
                       [[f"R{r}", n] for r, n in sorted(counts.items())]))

    print("\n--- Fig 6: hospital deliveries per day ---")
    data = suite.fig6_deliveries_per_day()
    timeline = suite.scenario.timeline
    for d in range(timeline.total_days):
        print(f"{day_label(timeline, d):>7}: total {int(data['total'][d]):3d} "
              f"rescued {int(data['rescued'][d]):3d}")
    return 0


def cmd_compare(args) -> int:
    from repro.eval.harness import ExperimentHarness, HarnessConfig
    from repro.eval.tables import format_table

    florence, michael = _datasets(args)
    harness = ExperimentHarness(
        florence, michael,
        HarnessConfig(mobirescue_episodes=args.episodes, seed=args.seed),
    )
    print(f"eval day {harness.config.eval_day_label}: "
          f"{len(harness.eval_requests())} requests, {harness.num_teams()} teams")

    rows = []
    for name in ("MobiRescue", "Rescue", "Schedule"):
        print(f"running {name}...", file=sys.stderr)
        run = harness.run_method(name)
        m = run.metrics
        delays = m.driving_delays()
        tl = m.timeliness_values()
        serving = [n for _, n in run.result.serving_samples]
        rows.append([
            name,
            run.result.num_served,
            m.total_timely_served,
            f"{np.median(delays) / 60:.1f}" if len(delays) else "-",
            f"{np.mean(tl) / 60:.1f}" if len(tl) else "-",
            f"{np.mean(serving):.0f}",
        ])
    print(format_table(
        ["method", "served", "timely", "med delay (min)",
         "mean timeliness (min)", "avg serving"],
        rows,
    ))
    return 0


def cmd_predict(args) -> int:
    from repro.eval.experiments import DispatchExperiments
    from repro.eval.harness import ExperimentHarness, HarnessConfig
    from repro.eval.tables import format_table

    florence, michael = _datasets(args)
    harness = ExperimentHarness(
        florence, michael,
        HarnessConfig(mobirescue_episodes=args.episodes, seed=args.seed),
    )
    quality = DispatchExperiments(harness).prediction_quality()
    rows = [
        [
            name,
            f"{q.mean_accuracy:.3f}",
            f"{q.mean_precision:.3f}",
            f"{(q.precisions > 0).mean():.2f}",
        ]
        for name, q in quality.items()
    ]
    print(format_table(
        ["method", "mean accuracy", "mean precision", "segments hit"],
        rows,
        title="Per-segment rescue-request prediction (Figs 15-16)",
    ))
    return 0


def cmd_simulate(args) -> int:
    from repro.core import MobiRescueSystem, save_trained
    from repro.sim import SimulationConfig
    from repro.sim.kernel import build_simulator, set_event_kernel_enabled
    from repro.sim.metrics import SimulationMetrics
    from repro.sim.requests import remap_to_operable, requests_from_rescues
    from repro.weather.storms import SECONDS_PER_DAY, day_index

    set_event_kernel_enabled(args.engine == "event")

    florence, michael = _datasets(args)
    print("training MobiRescue...", file=sys.stderr)
    system = MobiRescueSystem.train(*michael, episodes=args.episodes)
    if args.save:
        save_trained(system.trained, args.save)
        print(f"saved trained models to {args.save}")

    eval_scen, eval_bundle = florence
    day = day_index(eval_scen.timeline, "Sep 16")
    t0, t1 = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(eval_bundle.rescues, t0, t1),
        eval_scen.network, eval_scen.flood,
    )
    dispatcher = system.deploy(eval_scen, eval_bundle)
    sim = build_simulator(
        eval_scen, requests, dispatcher,
        SimulationConfig(
            t0_s=t0, t1_s=t1, num_teams=max(10, len(requests)), seed=args.seed
        ),
    )
    result = sim.run()
    metrics = SimulationMetrics(result)
    print(f"requests {len(requests)}  served {result.num_served}  "
          f"timely {metrics.total_timely_served}  "
          f"delivered {metrics.delivered_count()}")
    return 0


def cmd_train(args) -> int:
    from repro.core import save_trained
    from repro.core.persistence import list_checkpoints
    from repro.core.runner import RetryPolicy, Supervisor
    from repro.data import build_michael_dataset

    existing = list_checkpoints(args.checkpoint_dir)
    if existing and not args.resume:
        print(
            f"{args.checkpoint_dir} already holds {len(existing)} checkpoint(s); "
            "pass --resume to continue the run or choose a fresh directory",
            file=sys.stderr,
        )
        return 2
    if args.resume and not existing:
        print(f"no checkpoints under {args.checkpoint_dir} to resume", file=sys.stderr)
        return 2

    print("building the Michael (training) dataset...", file=sys.stderr)
    scenario, bundle = build_michael_dataset(population_size=args.population)
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        attempt_timeout_s=args.attempt_timeout if args.attempt_timeout > 0 else None,
    )
    if args.no_sentinel:
        from repro.core import supervised_training

        supervisor = Supervisor(policy=policy, name="train", seed=args.seed)
        trained = supervised_training(
            scenario,
            bundle,
            checkpoint_dir=args.checkpoint_dir,
            episodes=args.episodes,
            checkpoint_every=args.checkpoint_every,
            supervisor=supervisor,
        )
    else:
        from repro.core.config import MobiRescueConfig
        from repro.training import supervised_sentinel_training

        supervisor = Supervisor(policy=policy, name="train-sentinel", seed=args.seed)
        result = supervised_sentinel_training(
            scenario,
            bundle,
            MobiRescueConfig(seed=args.seed),
            checkpoint_dir=args.checkpoint_dir,
            episodes=args.episodes,
            supervisor=supervisor,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
        for anomaly in result.anomalies:
            print(
                f"anomaly: {anomaly['kind']} at episode {anomaly['episode']} "
                f"attempt {anomaly['attempt']} step {anomaly['step']}",
                file=sys.stderr,
            )
        for recovery in result.recoveries:
            print(
                f"recovery: level {recovery['level']} {recovery['actions']} "
                f"at episode {recovery['episode']}",
                file=sys.stderr,
            )
        if result.aborted:
            print(
                f"training ABORTED; forensics bundle: {result.forensics_path}",
                file=sys.stderr,
            )
            return 1
        trained = result.trained
        assert trained is not None
    rates = " ".join(f"{r:.2f}" for r in trained.episode_service_rates)
    print(f"trained {trained.episodes_run} episode(s); service rates: {rates}")
    if supervisor.incidents:
        print(f"incidents: {len(supervisor.incidents)}", file=sys.stderr)
        for incident in supervisor.incidents:
            print(f"  [{incident.kind}] {incident.message}", file=sys.stderr)
    if args.save:
        save_trained(trained, args.save)
        print(f"saved trained models to {args.save}")
    return 0


def _open_store(results_dir: str, resume: bool):
    """(store, error) for the CLI sweeps, enforcing the --resume contract."""
    from repro.eval.experiments import SweepStore

    if not results_dir:
        return None, None
    store = SweepStore(results_dir)
    if len(store) and not resume:
        return None, (
            f"{results_dir} already holds {len(store)} result cell(s); "
            "pass --resume to reuse them or choose a fresh directory"
        )
    return store, None


def cmd_experiments(args) -> int:
    from repro.eval.experiments import (
        ComparisonSweep,
        ComparisonSweepConfig,
        format_comparison_cells,
    )
    from repro.eval.harness import ExperimentHarness, HarnessConfig

    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    unknown = [m for m in methods if m not in ExperimentHarness.METHODS]
    if unknown or not methods or not seeds:
        print(
            f"unknown methods {unknown}; choose from "
            f"{', '.join(ExperimentHarness.METHODS)}",
            file=sys.stderr,
        )
        return 2
    store, error = _open_store(args.results_dir, args.resume)
    if error:
        print(error, file=sys.stderr)
        return 2
    florence, michael = _datasets(args)
    sweep = ComparisonSweep(
        florence,
        michael,
        ComparisonSweepConfig(
            methods=methods,
            seeds=seeds,
            harness=HarnessConfig(
                mobirescue_episodes=args.episodes, seed=seeds[0]
            ),
        ),
        store=store,
    )
    cells = sweep.run(progress=lambda msg: print(msg, file=sys.stderr))
    print(format_comparison_cells(cells))
    return 0


def cmd_robustness(args) -> int:
    from repro.eval.harness import ExperimentHarness, HarnessConfig
    from repro.eval.robustness import (
        RobustnessConfig,
        RobustnessSweep,
        format_degradation_table,
    )
    from repro.faults import get_profile

    profiles = tuple(p.strip() for p in args.profiles.split(",") if p.strip())
    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    # Fail fast on bad names — before the expensive dataset build.
    if not profiles or not methods:
        print("need at least one profile and one method", file=sys.stderr)
        return 2
    try:
        for name in profiles:
            get_profile(name)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    unknown = [m for m in methods if m not in ExperimentHarness.METHODS]
    if unknown:
        print(f"unknown methods {unknown}; choose from "
              f"{', '.join(ExperimentHarness.METHODS)}", file=sys.stderr)
        return 2
    store, error = _open_store(args.results_dir, args.resume)
    if error:
        print(error, file=sys.stderr)
        return 2
    florence, michael = _datasets(args)
    sweep = RobustnessSweep(
        florence,
        michael,
        RobustnessConfig(
            profiles=profiles,
            methods=methods,
            harness=HarnessConfig(
                mobirescue_episodes=args.episodes,
                seed=args.seed,
                dispatch_budget_s=args.budget if args.budget > 0 else None,
            ),
        ),
    )
    cells = sweep.run(
        progress=lambda msg: print(msg, file=sys.stderr), store=store
    )
    print(format_degradation_table(cells))
    return 0


def cmd_chaos(args) -> int:
    from repro.faults.profiles import get_component_profile, get_profile

    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    if not seeds:
        print("need at least one seed", file=sys.stderr)
        return 2
    if args.profile.startswith("worker-"):
        return _run_rollout_chaos(args, seeds)
    if args.profile.startswith("shard-"):
        return _run_shard_chaos(args, seeds)
    if args.profile.startswith("train-"):
        return _run_train_chaos(args, seeds)
    from repro.service.chaos import ChaosConfig, run_chaos

    try:
        get_profile(args.profile)
        get_component_profile(args.profile)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = ChaosConfig(
        profile=args.profile,
        seeds=seeds,
        population_size=250 if args.quick else args.population,
        num_teams=10 if args.quick else 15,
        window_days=0.25 if args.quick else 0.5,
        degradation_factor=args.factor,
    )
    report = run_chaos(
        config,
        out_path=args.out or None,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    for run in report["runs"]:
        print(
            f"seed {run['seed']}: clean served {run['clean_served']}, "
            f"chaos served {run['chaos_served']}, "
            f"{'OK' if run['ok'] else 'VIOLATED'}"
        )
    if args.out:
        print(f"wrote {args.out}")
    if not report["ok"]:
        for violation in report["violations"]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("all chaos invariants held")
    return 0


def _run_rollout_chaos(args, seeds: tuple[int, ...]) -> int:
    from repro.faults.profiles import get_worker_profile
    from repro.rollouts.chaos import RolloutChaosConfig, run_rollout_chaos

    try:
        get_worker_profile(args.profile)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = RolloutChaosConfig(
        profile=args.profile,
        seeds=seeds,
        episodes=4 if args.quick else 8,
        population_size=250 if args.quick else args.population,
        num_teams=10 if args.quick else 15,
        window_days=0.25 if args.quick else 0.5,
    )
    report = run_rollout_chaos(
        config,
        out_path=args.out or None,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    for run in report["runs"]:
        print(
            f"seed {run['seed']}: worker deaths {run['worker_deaths']}, "
            f"quarantined {run['quarantined_ids']}, "
            f"{'OK' if run['ok'] else 'VIOLATED'}"
        )
    if args.out:
        print(f"wrote {args.out}")
    if not report["ok"]:
        for violation in report["violations"]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("all worker chaos invariants held")
    return 0


def _run_train_chaos(args, seeds: tuple[int, ...]) -> int:
    from repro.faults.profiles import get_train_profile
    from repro.training import TrainChaosConfig, run_train_chaos

    try:
        get_train_profile(args.profile)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = TrainChaosConfig(
        profile=args.profile,
        seeds=seeds,
        episodes=2 if args.quick else 4,
        population_size=300 if args.quick else args.population,
        num_teams=8 if args.quick else 15,
        work_dir=args.work_dir or None,
    )
    report = run_train_chaos(
        config,
        out_path=args.out or None,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    for run in report["runs"]:
        print(
            f"seed {run['seed']}: {run['applied_count']} faults applied, "
            f"{len(run['anomalies'])} anomalies, "
            f"{len(run['recoveries'])} recoveries"
            f"{', ABORTED' if run['aborted'] else ''}, "
            f"{'OK' if run['ok'] else 'VIOLATED'}"
        )
    if args.out:
        print(f"wrote {args.out}")
    if not report["ok"]:
        for violation in report["violations"]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("all training chaos invariants held")
    return 0


def _run_shard_chaos(args, seeds: tuple[int, ...]) -> int:
    from repro.faults.profiles import get_shard_profile
    from repro.service.sharding import ShardChaosConfig, run_shard_chaos

    try:
        get_shard_profile(args.profile)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = ShardChaosConfig(
        profile=args.profile,
        seeds=seeds,
        population_size=250 if args.quick else args.population,
        num_teams=10 if args.quick else 15,
        window_days=0.25 if args.quick else 0.5,
        degradation_factor=args.factor,
    )
    report = run_shard_chaos(
        config,
        out_path=args.out or None,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    for run in report["runs"]:
        print(
            f"seed {run['seed']}: clean served {run['clean_served']}, "
            f"shard chaos served {run['chaos_served']}, "
            f"{'OK' if run['ok'] else 'VIOLATED'}"
        )
    if args.out:
        print(f"wrote {args.out}")
    if not report["ok"]:
        for violation in report["violations"]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("all shard chaos invariants held")
    return 0


def cmd_rollouts(args) -> int:
    from repro.data import DatasetSpec, build_dataset
    from repro.rollouts import (
        EpisodeSpec,
        EvalRolloutTask,
        RolloutConfig,
        RolloutExecutor,
        RolloutStore,
        build_training_collect_task,
        run_rollouts_serial,
    )
    from repro.sim.requests import remap_to_operable, requests_from_rescues
    from repro.weather.storms import SECONDS_PER_DAY, day_index

    population = 250 if args.quick else args.population
    episodes = 4 if args.quick else args.episodes
    if args.mode == "eval":
        scenario, bundle = build_dataset(
            DatasetSpec(storm="florence", population_size=population)
        )
        day = day_index(scenario.timeline, "Sep 16")
        t0_s = day * SECONDS_PER_DAY
        t1_s = (day + (0.25 if args.quick else 0.5)) * SECONDS_PER_DAY
        requests = remap_to_operable(
            requests_from_rescues(bundle.rescues, t0_s, t1_s),
            scenario.network,
            scenario.flood,
        )
        task = EvalRolloutTask(
            scenario=scenario,
            requests=tuple(requests),
            t0_s=t0_s,
            t1_s=t1_s,
            num_teams=10 if args.quick else 15,
        )
    else:
        from repro.core.config import MobiRescueConfig

        scenario, bundle = build_dataset(
            DatasetSpec(storm="michael", population_size=population)
        )
        task = build_training_collect_task(
            scenario,
            bundle,
            MobiRescueConfig(seed=args.seed),
            num_teams=12 if args.quick else 40,
        )
    specs = [EpisodeSpec(i, task.kind, seed=args.seed) for i in range(episodes)]

    store = None
    if args.results_dir:
        store = RolloutStore(args.results_dir)
        existing = len(list(store.root.glob("episode=*.json")))
        if existing and not args.resume:
            print(
                f"{args.results_dir} already holds {existing} episode cell(s); "
                "pass --resume to reuse them or choose a fresh directory",
                file=sys.stderr,
            )
            return 2

    config = RolloutConfig(
        num_workers=args.workers,
        heartbeat_timeout_s=30.0,
        beat_interval_s=0.05,
    )
    executor = RolloutExecutor(task, config, seed=args.seed, store=store)
    report = executor.run(specs)
    print(
        f"{report.completed}/{report.total} episodes merged "
        f"({report.from_store} from store), {report.worker_deaths} worker "
        f"deaths, fingerprint {report.merged.fingerprint()[:16]}"
    )
    if args.mode == "eval":
        table = report.merged.eval_table()
        for key, value in sorted(table["totals"].items()):
            print(f"  total {key}: {value:g}")
    else:
        print(f"  transitions collected: {len(report.merged.transitions())}")
    if not report.zero_lost:
        print("LOST EPISODES", file=sys.stderr)
        return 1
    if args.verify_serial:
        serial = run_rollouts_serial(task, specs)
        if serial.merged.fingerprint() != report.merged.fingerprint():
            print(
                "PARALLEL/SERIAL MISMATCH: "
                f"{serial.merged.fingerprint()} != {report.merged.fingerprint()}",
                file=sys.stderr,
            )
            return 1
        print("parallel run bit-identical to serial")
    return 0


def cmd_loadgen(args) -> int:
    from repro.service.sharding.loadgen import (
        LoadgenConfig,
        default_output_path,
        format_loadgen_report,
        quick_config,
        run_loadgen,
    )

    if args.quick:
        config = quick_config(seed=args.seed)
    else:
        config = LoadgenConfig(
            num_users=args.users,
            records_per_user_hour=args.rate,
            sim_hours=args.hours,
            num_shards=args.shards,
            seed=args.seed,
        )
    payload = run_loadgen(
        config, progress=lambda msg: print(msg, file=sys.stderr)
    )
    path = args.out or default_output_path(payload)
    from repro.core.artifacts import atomic_write_json

    atomic_write_json(path, payload)
    print(format_loadgen_report(payload))
    print(f"\nwrote {path}")
    if not payload["reconciliation_ok"]:
        print("RECONCILIATION BROKEN", file=sys.stderr)
        return 1
    return 0


def cmd_service_report(args) -> int:
    import json

    from repro.service.report import (
        extract_service_report,
        format_service_report,
        write_service_report,
    )

    try:
        with open(args.input, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read {args.input!r}: {exc}", file=sys.stderr)
        return 2
    try:
        report = extract_service_report(payload)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.out:
        write_service_report(report, args.out)
        print(f"wrote {args.out}")
    if args.text or not args.out:
        print(format_service_report(report))
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def cmd_bench(args) -> int:
    from repro.perf.bench import (
        default_output_path,
        format_bench_table,
        run_bench,
        write_bench,
    )

    payload = run_bench(quick=args.quick)
    path = args.out or default_output_path(payload)
    write_bench(payload, path)
    print(format_bench_table(payload))
    print(f"\nwrote {path}")
    return 0


FIGURES = {
    "fig9": ("fig9_served_per_hour", "timely served requests per hour"),
    "fig11": ("fig11_delay_per_hour", "average driving delay per hour (s)"),
    "fig14": ("fig14_serving_teams_per_hour", "serving rescue teams per hour"),
}
CDF_FIGURES = {
    "fig12": ("fig12_delay_values", "driving delay CDF (s)"),
    "fig13": ("fig13_timeliness_values", "timeliness CDF (s)"),
}


def cmd_figure(args) -> int:
    from repro.eval.ascii import ascii_cdf, ascii_chart
    from repro.eval.experiments import DispatchExperiments
    from repro.eval.harness import ExperimentHarness, HarnessConfig

    fig = args.figure
    if fig not in FIGURES and fig not in CDF_FIGURES:
        known = ", ".join(sorted([*FIGURES, *CDF_FIGURES]))
        print(f"unknown figure {fig!r}; choose from: {known}", file=sys.stderr)
        return 2

    florence, michael = _datasets(args)
    harness = ExperimentHarness(
        florence, michael,
        HarnessConfig(mobirescue_episodes=args.episodes, seed=args.seed),
    )
    experiments = DispatchExperiments(harness)
    if fig in FIGURES:
        method_name, title = FIGURES[fig]
        data = getattr(experiments, method_name)()
        print(ascii_chart(data, title=f"{fig}: {title}", x_label="hour of day"))
    else:
        method_name, title = CDF_FIGURES[fig]
        data = getattr(experiments, method_name)()
        print(ascii_cdf(data, title=f"{fig}: {title}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MobiRescue (ICDCS 2020) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("measure", help="Section III measurement study")
    _add_common(p)
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("compare", help="Section V dispatching comparison")
    _add_common(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("predict", help="Figs 15-16 prediction quality")
    _add_common(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("simulate", help="train + deploy the full system")
    _add_common(p)
    p.add_argument("--save", type=str, default="", help="save trained models (.npz)")
    p.add_argument(
        "--engine", choices=("event", "fixed"), default="event",
        help="simulation engine: the event-driven kernel (default) or the "
        "seed fixed-step loop (bit-identical reference)",
    )
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("figure", help="render one dispatching figure as ASCII")
    p.add_argument("figure", help="fig9, fig11, fig12, fig13 or fig14")
    _add_common(p)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "train", help="crash-safe checkpointed training (resumable)"
    )
    _add_common(p)
    p.add_argument(
        "--checkpoint-dir", type=str, required=True,
        help="directory for resumable training checkpoints",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="continue from the latest valid checkpoint",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="episodes between checkpoints (default: every episode)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3,
        help="supervisor retry budget for transient failures",
    )
    p.add_argument(
        "--attempt-timeout", type=float, default=0.0,
        help="per-attempt wall-clock deadline, seconds (0 = off)",
    )
    p.add_argument(
        "--no-sentinel", action="store_true",
        help="disable the numeric-health sentinel and its recovery "
             "ladder (docs/TRAINING_HEALTH.md); identical final weights "
             "either way on a healthy run",
    )
    p.add_argument("--save", type=str, default="", help="save trained models (.npz)")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser(
        "chaos", help="resilience chaos harness: invariant-checked fault runs"
    )
    _add_common(p)
    p.add_argument(
        "--profile", type=str, default="severe",
        help="fault profile composed over env + components "
             "(none, mild, severe, blackout), a shard profile "
             "(shard-kill, shard-stall, shard-skew, shard-blackout) to "
             "run the sharded-topology harness, a worker profile "
             "(worker-kill, worker-stall, worker-blackout) to run the "
             "parallel-rollout harness, or a training profile "
             "(train-none, train-mild, train-severe, train-blackout) to "
             "run the self-healing-training harness",
    )
    p.add_argument(
        "--seeds", type=str, default="0,1", help="comma-separated chaos seeds"
    )
    p.add_argument(
        "--factor", type=float, default=3.0,
        help="max served-count degradation factor vs the clean run",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="CI-sized world (250 people, quarter-day window, 10 teams)",
    )
    p.add_argument(
        "--out", type=str, default="",
        help="write the JSON chaos report here (atomic)",
    )
    p.add_argument(
        "--work-dir", type=str, default="",
        help="train-* profiles: persist per-seed run directories "
             "(checkpoints, journals, forensics bundles) here instead "
             "of a throwaway tempdir",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "lint", help="repo-invariant static analysis (reprolint)"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "bench", help="hot-path microbenchmarks; writes BENCH_<date>.json"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="CI-sized workload (seconds instead of minutes)",
    )
    p.add_argument(
        "--out", type=str, default="",
        help="output path (default: BENCH_<date>.json in the working directory)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "rollouts",
        help="fault-tolerant parallel episode rollouts (eval or training "
             "collection)",
    )
    _add_common(p)
    p.add_argument(
        "--mode", type=str, default="eval", choices=("eval", "train"),
        help="eval: dispatch-simulation episodes; train: DQN experience "
             "collection",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="worker process count"
    )
    p.add_argument(
        "--quick", action="store_true",
        help="CI-sized campaign (250 people, 4 episodes, quarter-day window)",
    )
    p.add_argument(
        "--results-dir", type=str, default="",
        help="persist per-episode results here (enables resumption)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="reuse completed episode cells from --results-dir",
    )
    p.add_argument(
        "--verify-serial", action="store_true",
        help="also run the serial path and fail unless bit-identical",
    )
    p.set_defaults(func=cmd_rollouts)

    p = sub.add_parser(
        "loadgen",
        help="million-user sharded-ingest load harness; "
             "writes LOADGEN_<date>.json",
    )
    p.add_argument(
        "--users", type=int, default=300_000, help="synthetic user count"
    )
    p.add_argument(
        "--rate", type=float, default=4.0, help="GPS records per user-hour"
    )
    p.add_argument(
        "--hours", type=float, default=1.0, help="simulated hours to replay"
    )
    p.add_argument("--shards", type=int, default=8, help="ingest shard count")
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--quick", action="store_true",
        help="CI-sized campaign (thousands of users, a few ticks)",
    )
    p.add_argument(
        "--out", type=str, default="",
        help="output path (default: LOADGEN_<date>.json)",
    )
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "service-report",
        help="unified service-health report from a chaos, loadgen, or "
             "training artifact",
    )
    p.add_argument(
        "input", type=str,
        help="path to a chaos campaign report (service, worker, shard, or "
             "train-*), a loadgen artifact, or a training forensics "
             "bundle's incidents.json",
    )
    p.add_argument(
        "--out", type=str, default="",
        help="write the extracted report here (atomic JSON)",
    )
    p.add_argument(
        "--text", action="store_true",
        help="print the text rendering (default when --out is not given)",
    )
    p.set_defaults(func=cmd_service_report)

    p = sub.add_parser(
        "experiments", help="method-comparison sweep with per-cell persistence"
    )
    _add_common(p)
    p.add_argument(
        "--methods", type=str, default="MobiRescue,Rescue,Schedule",
        help="comma-separated dispatchers to sweep",
    )
    p.add_argument(
        "--seeds", type=str, default="0", help="comma-separated evaluation seeds"
    )
    p.add_argument(
        "--results-dir", type=str, default="",
        help="persist per-cell results here (enables resumption)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="reuse completed cells from --results-dir, run only the rest",
    )
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "robustness", help="fault-injection sweep: degradation table"
    )
    _add_common(p)
    p.add_argument(
        "--profiles", type=str, default="none,mild,severe",
        help="comma-separated fault profiles (none, mild, severe, blackout)",
    )
    p.add_argument(
        "--methods", type=str, default="MobiRescue,Rescue,Schedule,Nearest",
        help="comma-separated dispatchers to sweep",
    )
    p.add_argument(
        "--budget", type=float, default=0.0,
        help="wall-clock compute budget per dispatch call, seconds (0 = off)",
    )
    p.add_argument(
        "--results-dir", type=str, default="",
        help="persist per-cell results here (enables resumption)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="reuse completed cells from --results-dir, run only the rest",
    )
    p.set_defaults(func=cmd_robustness)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "verbose", False):
        from repro.core.log import configure

        configure(verbose=True)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

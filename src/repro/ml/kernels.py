"""SVM kernels.

The paper motivates SVM partly by kernels: "the SVM classifier can overcome
[non-linear separability] by using the kernel function".  The RBF kernel is
the default for the rescue predictor; linear is the ablation baseline.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _as_2d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    return x[None, :] if x.ndim == 1 else x


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """K(a, b) = a . b — Gram matrix of shape (len(a), len(b))."""
    return _as_2d(a) @ _as_2d(b).T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """K(a, b) = exp(-gamma * ||a - b||^2)."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    a, b = _as_2d(a), _as_2d(b)
    aa = (a**2).sum(axis=1)[:, None]
    bb = (b**2).sum(axis=1)[None, :]
    d2 = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * d2)


def polynomial_kernel(
    a: np.ndarray, b: np.ndarray, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """K(a, b) = (a . b + coef0)^degree."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    return (_as_2d(a) @ _as_2d(b).T + coef0) ** degree


def resolve_kernel(name: str, gamma: float = 1.0, degree: int = 3) -> Kernel:
    """Kernel factory used by :class:`repro.ml.svm.SVC`."""
    if name == "linear":
        return linear_kernel
    if name == "rbf":
        return lambda a, b: rbf_kernel(a, b, gamma=gamma)
    if name == "poly":
        return lambda a, b: polynomial_kernel(a, b, degree=degree)
    raise ValueError(f"unknown kernel {name!r} (use 'linear', 'rbf' or 'poly')")

"""SVM kernels.

The paper motivates SVM partly by kernels: "the SVM classifier can overcome
[non-linear separability] by using the kernel function".  The RBF kernel is
the default for the rescue predictor; linear is the ablation baseline.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _as_2d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    return x[None, :] if x.ndim == 1 else x


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """K(a, b) = a . b — Gram matrix of shape (len(a), len(b))."""
    return _as_2d(a) @ _as_2d(b).T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """K(a, b) = exp(-gamma * ||a - b||^2)."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    a, b = _as_2d(a), _as_2d(b)
    aa = (a**2).sum(axis=1)[:, None]
    bb = (b**2).sum(axis=1)[None, :]
    d2 = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * d2)


def polynomial_kernel(
    a: np.ndarray, b: np.ndarray, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """K(a, b) = (a . b + coef0)^degree."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    return (_as_2d(a) @ _as_2d(b).T + coef0) ** degree


#: Blocks with fewer rows than this may hit BLAS's single/few-row matmul
#: path, whose last-ulp rounding differs from the many-row path; tiny
#: blocks are rounded up and short tails folded into the previous block so
#: every block takes the same multi-row path as the unblocked call.
_MIN_BLOCK_ROWS = 4


def gram_blocked(
    kernel: Kernel, a: np.ndarray, b: np.ndarray, block_rows: int = 8192
) -> np.ndarray:
    """Evaluate ``kernel(a, b)`` in row blocks of ``a``.

    Whole-population inference builds an ``(N, S)`` Gram matrix; blocking
    bounds peak memory to roughly ``block_rows * S`` floats.  Every row
    block is computed by the same multi-row BLAS/elementwise path as the
    unblocked call, so the concatenated result is *exactly* equal to
    ``kernel(a, b)`` (the regression suite asserts bitwise equality).
    """
    if block_rows < 1:
        raise ValueError("block_rows must be positive")
    block = max(block_rows, _MIN_BLOCK_ROWS)
    a = _as_2d(a)
    if len(a) <= block:
        return kernel(a, b)
    starts = list(range(0, len(a), block))
    if len(a) - starts[-1] < _MIN_BLOCK_ROWS:
        starts.pop()  # fold the short tail into the previous block
    ends = starts[1:] + [len(a)]
    return np.concatenate(
        [kernel(a[s:e], b) for s, e in zip(starts, ends)], axis=0
    )


def resolve_kernel(name: str, gamma: float = 1.0, degree: int = 3) -> Kernel:
    """Kernel factory used by :class:`repro.ml.svm.SVC`."""
    if name == "linear":
        return linear_kernel
    if name == "rbf":
        return lambda a, b: rbf_kernel(a, b, gamma=gamma)
    if name == "poly":
        return lambda a, b: polynomial_kernel(a, b, degree=degree)
    raise ValueError(f"unknown kernel {name!r} (use 'linear', 'rbf' or 'poly')")

"""From-scratch machine-learning substrate.

Only numpy/scipy are available offline, so the two learners the paper uses
are implemented here directly: a Support Vector Machine trained with
Platt's SMO (Section IV-B) and a small deep-Q network — numpy MLP, replay
buffer, target network — for the RL dispatcher (Section IV-C, which follows
Pensieve [24] in using a DNN policy).
"""

from repro.ml.scaler import StandardScaler
from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel, resolve_kernel
from repro.ml.svm import SVC
from repro.ml.metrics import (
    ClassificationCounts,
    accuracy,
    confusion_counts,
    f1_score,
    precision,
    recall,
)
from repro.ml.nn import MLP, AdamState
from repro.ml.replay import ReplayBuffer, Transition
from repro.ml.dqn import DQNAgent, DQNConfig

__all__ = [
    "AdamState",
    "ClassificationCounts",
    "DQNAgent",
    "DQNConfig",
    "MLP",
    "ReplayBuffer",
    "SVC",
    "StandardScaler",
    "Transition",
    "accuracy",
    "confusion_counts",
    "f1_score",
    "linear_kernel",
    "polynomial_kernel",
    "precision",
    "rbf_kernel",
    "recall",
    "resolve_kernel",
]

"""Feature standardization.

The disaster-related factors live on wildly different scales
(precipitation ~1e2 mm, wind ~1e1 mph, altitude ~2e2 m); both the SVM and
the DQN want zero-mean unit-variance inputs.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature standardization: ``(x - mean) / std``."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("fit expects a non-empty 2-D array")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant features carry no information; dividing by 1 leaves them
        # at zero after centering instead of blowing up.
        self.std_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) / self.std_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(z, dtype=float) * self.std_ + self.mean_

"""Deep Q-learning agent.

Standard DQN machinery: epsilon-greedy behaviour policy, uniform experience
replay, a slow-moving target network, and Q-updates restricted to the taken
action's output unit.  The MobiRescue dispatcher wraps one agent shared by
all rescue teams (Section IV-C4 trains a single policy from all teams'
experiences).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.nn import MLP
from repro.ml.replay import ReplayBuffer, Transition


@dataclass(frozen=True)
class DQNConfig:
    state_dim: int
    num_actions: int
    hidden_sizes: tuple[int, ...] = (64, 64)
    learning_rate: float = 1e-3
    gamma: float = 0.95
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    #: Multiplicative epsilon decay applied per learning step.
    epsilon_decay: float = 0.995
    buffer_capacity: int = 50_000
    batch_size: int = 64
    #: Target-network sync period, in learning steps.
    target_sync_every: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.state_dim < 1 or self.num_actions < 1:
            raise ValueError("state_dim and num_actions must be positive")
        if not (0.0 <= self.epsilon_end <= self.epsilon_start <= 1.0):
            raise ValueError("need 0 <= epsilon_end <= epsilon_start <= 1")
        if not (0.0 < self.gamma <= 1.0):
            raise ValueError("gamma must be in (0, 1]")
        if not (0.0 < self.epsilon_decay <= 1.0):
            raise ValueError("epsilon_decay must be in (0, 1]")


class DQNAgent:
    """DQN with target network and action masking."""

    def __init__(self, config: DQNConfig) -> None:
        self.config = config
        sizes = [config.state_dim, *config.hidden_sizes, config.num_actions]
        self.q_net = MLP(sizes, learning_rate=config.learning_rate, seed=config.seed)
        self.target_net = self.q_net.clone()
        self.buffer = ReplayBuffer(config.buffer_capacity, config.state_dim)
        self.rng = np.random.default_rng(config.seed)
        self.epsilon = config.epsilon_start
        self.learn_steps = 0

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q(s, .) for one state."""
        return self.q_net.predict_one(state)

    def act(
        self,
        state: np.ndarray,
        valid_actions: np.ndarray | None = None,
        greedy: bool = False,
    ) -> int:
        """Epsilon-greedy action; ``valid_actions`` is a boolean mask over
        the action space (invalid actions are never selected)."""
        num = self.config.num_actions
        if valid_actions is None:
            valid_actions = np.ones(num, dtype=bool)
        if valid_actions.shape != (num,) or not valid_actions.any():
            raise ValueError("valid_actions must be a non-empty mask over actions")
        if not greedy and self.rng.random() < self.epsilon:
            choices = np.nonzero(valid_actions)[0]
            return int(self.rng.choice(choices))
        q = self.q_values(state).copy()
        q[~valid_actions] = -np.inf
        return int(np.argmax(q))

    def remember(
        self, state: np.ndarray, action: int, reward: float, next_state: np.ndarray, done: bool
    ) -> None:
        self.buffer.push(Transition(state, int(action), float(reward), next_state, done))

    def learn(self) -> float | None:
        """One replay-batch update; returns the loss, or ``None`` when the
        buffer is still smaller than a batch."""
        cfg = self.config
        if len(self.buffer) < cfg.batch_size:
            return None
        states, actions, rewards, next_states, dones = self.buffer.sample(
            cfg.batch_size, self.rng
        )
        q_next = self.target_net.forward(next_states).max(axis=1)
        targets_a = rewards + cfg.gamma * q_next * (~dones)

        target = self.q_net.forward(states).copy()
        mask = np.zeros_like(target)
        rows = np.arange(cfg.batch_size)
        target[rows, actions] = targets_a
        mask[rows, actions] = 1.0
        loss = self.q_net.train_step(states, target, output_mask=mask)

        self.learn_steps += 1
        self.epsilon = max(cfg.epsilon_end, self.epsilon * cfg.epsilon_decay)
        if self.learn_steps % cfg.target_sync_every == 0:
            self.sync_target()
        return loss

    def sync_target(self) -> None:
        self.target_net.set_weights(self.q_net.get_weights())

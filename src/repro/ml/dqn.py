"""Deep Q-learning agent.

Standard DQN machinery: epsilon-greedy behaviour policy, uniform experience
replay, a slow-moving target network, and Q-updates restricted to the taken
action's output unit.  The MobiRescue dispatcher wraps one agent shared by
all rescue teams (Section IV-C4 trains a single policy from all teams'
experiences).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.ml.nn import MLP
from repro.ml.replay import ReplayBuffer, Transition


@dataclass(frozen=True)
class DQNConfig:
    state_dim: int
    num_actions: int
    hidden_sizes: tuple[int, ...] = (64, 64)
    learning_rate: float = 1e-3
    gamma: float = 0.95
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    #: Multiplicative epsilon decay applied per learning step.
    epsilon_decay: float = 0.995
    buffer_capacity: int = 50_000
    batch_size: int = 64
    #: Target-network sync period, in learning steps.
    target_sync_every: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.state_dim < 1 or self.num_actions < 1:
            raise ValueError("state_dim and num_actions must be positive")
        if not (0.0 <= self.epsilon_end <= self.epsilon_start <= 1.0):
            raise ValueError("need 0 <= epsilon_end <= epsilon_start <= 1")
        if not (0.0 < self.gamma <= 1.0):
            raise ValueError("gamma must be in (0, 1]")
        if not (0.0 < self.epsilon_decay <= 1.0):
            raise ValueError("epsilon_decay must be in (0, 1]")


class DQNAgent:
    """DQN with target network and action masking."""

    def __init__(self, config: DQNConfig) -> None:
        self.config = config
        sizes = [config.state_dim, *config.hidden_sizes, config.num_actions]
        self.q_net = MLP(sizes, learning_rate=config.learning_rate, seed=config.seed)
        self.target_net = self.q_net.clone()
        self.buffer = ReplayBuffer(config.buffer_capacity, config.state_dim)
        self.rng = np.random.default_rng(config.seed)
        self.epsilon = config.epsilon_start
        self.learn_steps = 0
        #: Optional per-step tap called as ``observer(agent, loss)`` after
        #: every completed :meth:`learn` update.  The agent never passes it
        #: randomness and ignores its return value, so a read-only observer
        #: (the training sentinel) cannot perturb the weight trajectory.
        self.observer: Callable[[DQNAgent, float], None] | None = None

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q(s, .) for one state."""
        return self.q_net.predict_one(state)

    def act(
        self,
        state: np.ndarray,
        valid_actions: np.ndarray | None = None,
        greedy: bool = False,
    ) -> int:
        """Epsilon-greedy action; ``valid_actions`` is a boolean mask over
        the action space (invalid actions are never selected)."""
        num = self.config.num_actions
        if valid_actions is None:
            valid_actions = np.ones(num, dtype=bool)
        if valid_actions.shape != (num,) or not valid_actions.any():
            raise ValueError("valid_actions must be a non-empty mask over actions")
        if not greedy and self.rng.random() < self.epsilon:
            choices = np.nonzero(valid_actions)[0]
            return int(self.rng.choice(choices))
        q = self.q_values(state).copy()
        q[~valid_actions] = -np.inf
        return int(np.argmax(q))

    def remember(
        self, state: np.ndarray, action: int, reward: float, next_state: np.ndarray, done: bool
    ) -> None:
        self.buffer.push(Transition(state, int(action), float(reward), next_state, done))

    def learn(self) -> float | None:
        """One replay-batch update; returns the loss, or ``None`` when the
        buffer is still smaller than a batch."""
        cfg = self.config
        if len(self.buffer) < cfg.batch_size:
            return None
        states, actions, rewards, next_states, dones = self.buffer.sample(
            cfg.batch_size, self.rng
        )
        q_next = self.target_net.forward(next_states).max(axis=1)
        targets_a = rewards + cfg.gamma * q_next * (~dones)

        target = self.q_net.forward(states).copy()
        mask = np.zeros_like(target)
        rows = np.arange(cfg.batch_size)
        target[rows, actions] = targets_a
        mask[rows, actions] = 1.0
        loss = self.q_net.train_step(states, target, output_mask=mask)

        self.learn_steps += 1
        self.epsilon = max(cfg.epsilon_end, self.epsilon * cfg.epsilon_decay)
        if self.learn_steps % cfg.target_sync_every == 0:
            self.sync_target()
        if self.observer is not None:
            self.observer(self, loss)
        return loss

    def sync_target(self) -> None:
        self.target_net.set_weights(self.q_net.get_weights())

    # -- checkpointing ----------------------------------------------------------

    def get_state(self) -> dict[str, np.ndarray]:
        """Complete training state as an npz-ready array dict.

        Captures everything a bit-identical resume needs: Q-network weights
        plus Adam state, target-network weights, the full replay buffer,
        the behaviour policy's RNG bit-generator state, epsilon and the
        learn-step counter.
        """
        arrays: dict[str, np.ndarray] = {}
        for key, value in self.q_net.get_train_state().items():
            arrays[f"q.{key}"] = value
        for i, (w, b) in enumerate(self.target_net.get_weights()):
            arrays[f"target.w{i}"] = w
            arrays[f"target.b{i}"] = b
        for key, value in self.buffer.get_state().items():
            arrays[f"buffer.{key}"] = value
        arrays["rng_json"] = np.array([json.dumps(self.rng.bit_generator.state)])
        arrays["epsilon"] = np.array([self.epsilon])
        arrays["learn_steps"] = np.array([self.learn_steps], dtype=np.int64)
        return arrays

    def set_state(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Restore the state captured by :meth:`get_state`.

        ``arrays`` may be any mapping of the same keys — a dict or an open
        ``NpzFile``.  The agent must have the same architecture (config)
        as the one that produced the state.
        """
        self.q_net.set_train_state(
            {k[len("q."):]: arrays[k] for k in arrays.keys() if k.startswith("q.")}
        )
        weights: list[tuple[np.ndarray, np.ndarray]] = []
        i = 0
        while f"target.w{i}" in arrays:
            weights.append((arrays[f"target.w{i}"], arrays[f"target.b{i}"]))
            i += 1
        self.target_net.set_weights(weights)
        self.buffer.set_state(
            {
                k[len("buffer."):]: arrays[k]
                for k in arrays.keys()
                if k.startswith("buffer.")
            }
        )
        self.rng = restore_generator(str(arrays["rng_json"][0]))
        self.epsilon = float(arrays["epsilon"][0])
        self.learn_steps = int(arrays["learn_steps"][0])


def restore_generator(state_json: str) -> np.random.Generator:
    """Rebuild a ``numpy.random.Generator`` from its serialized
    bit-generator state (the JSON form of ``rng.bit_generator.state``)."""
    state = json.loads(state_json)
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)

"""Binary-classification metrics (paper Section V-B definitions).

The paper scores the rescue-request predictor with accuracy
``(TP+TN)/(TP+TN+FP+FN)`` and precision ``TP/(TP+FP)`` per road segment
(Figs. 15-16); recall and F1 are included for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClassificationCounts:
    """Confusion-matrix counts for a binary problem."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationCounts:
    y_true = np.asarray(y_true).astype(int)
    y_pred = np.asarray(y_pred).astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    bad = set(np.unique(np.concatenate([y_true, y_pred]))) - {0, 1}
    if bad:
        raise ValueError(f"labels must be binary, got extra values {bad}")
    return ClassificationCounts(
        tp=int(((y_true == 1) & (y_pred == 1)).sum()),
        fp=int(((y_true == 0) & (y_pred == 1)).sum()),
        tn=int(((y_true == 0) & (y_pred == 0)).sum()),
        fn=int(((y_true == 1) & (y_pred == 0)).sum()),
    )


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return confusion_counts(y_true, y_pred).accuracy


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return confusion_counts(y_true, y_pred).precision


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return confusion_counts(y_true, y_pred).recall


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return confusion_counts(y_true, y_pred).f1

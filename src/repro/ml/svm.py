"""Support Vector Machine classifier trained with SMO.

Implements the soft-margin kernel SVM of Cortes & Vapnik [10] — the model
the paper uses to classify "should be rescued" vs "should not be rescued"
from the disaster-related factor vector.  Training uses Platt's Sequential
Minimal Optimization in its simplified form (randomized second multiplier),
which converges comfortably at this problem's scale (a few thousand points,
3 features).

Labels at the API boundary are {0, 1} to match the paper's Equation (1);
internally SMO works with {-1, +1}.
"""

from __future__ import annotations

import numpy as np

from repro.ml.kernels import gram_blocked, resolve_kernel


class SVC:
    """Soft-margin kernel SVM (binary, labels in {0, 1})."""

    def __init__(
        self,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma: float = 1.0,
        degree: int = 3,
        tol: float = 1e-3,
        max_passes: int = 8,
        max_iter: int = 20_000,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError("C must be positive")
        if max_passes < 1 or max_iter < 1:
            raise ValueError("iteration limits must be positive")
        self.c = float(c)
        self.kernel_name = kernel
        self.gamma = float(gamma)
        self.degree = int(degree)
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iter = int(max_iter)
        self.seed = int(seed)
        self._kernel = resolve_kernel(kernel, gamma=gamma, degree=degree)
        self._alpha: np.ndarray | None = None
        self._b = 0.0
        self._sv_x: np.ndarray | None = None
        self._sv_y: np.ndarray | None = None

    # -- training -----------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVC":
        """Train on features ``x`` (N, D) and labels ``y`` in {0, 1}."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if y.shape != (x.shape[0],):
            raise ValueError("y must be 1-D and aligned with x")
        labels = set(np.unique(y).tolist())
        if not labels <= {0, 1}:
            raise ValueError("labels must be in {0, 1}")
        if len(labels) < 2:
            raise ValueError("training data must contain both classes")

        ys = np.where(y == 1, 1.0, -1.0)
        n = len(x)
        gram = self._kernel(x, x)
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        def f(i: int) -> float:
            return float((alpha * ys) @ gram[:, i] + b)

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                iters += 1
                e_i = f(i) - ys[i]
                if (ys[i] * e_i < -self.tol and alpha[i] < self.c) or (
                    ys[i] * e_i > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    e_j = f(j) - ys[j]
                    a_i_old, a_j_old = alpha[i], alpha[j]
                    if ys[i] != ys[j]:
                        lo = max(0.0, a_j_old - a_i_old)
                        hi = min(self.c, self.c + a_j_old - a_i_old)
                    else:
                        lo = max(0.0, a_i_old + a_j_old - self.c)
                        hi = min(self.c, a_i_old + a_j_old)
                    if lo == hi:
                        continue
                    eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    a_j = a_j_old - ys[j] * (e_i - e_j) / eta
                    a_j = min(hi, max(lo, a_j))
                    if abs(a_j - a_j_old) < 1e-7:
                        continue
                    a_i = a_i_old + ys[i] * ys[j] * (a_j_old - a_j)
                    alpha[i], alpha[j] = a_i, a_j
                    b1 = (
                        b
                        - e_i
                        - ys[i] * (a_i - a_i_old) * gram[i, i]
                        - ys[j] * (a_j - a_j_old) * gram[i, j]
                    )
                    b2 = (
                        b
                        - e_j
                        - ys[i] * (a_i - a_i_old) * gram[i, j]
                        - ys[j] * (a_j - a_j_old) * gram[j, j]
                    )
                    if 0 < a_i < self.c:
                        b = b1
                    elif 0 < a_j < self.c:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0

        sv = alpha > 1e-8
        self._alpha = alpha[sv]
        self._sv_x = x[sv]
        self._sv_y = ys[sv]
        self._b = b
        return self

    # -- inference ----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._alpha is not None

    @property
    def num_support_vectors(self) -> int:
        return 0 if self._alpha is None else len(self._alpha)

    def decision_function(
        self, x: np.ndarray, block_rows: int | None = None
    ) -> np.ndarray:
        """Signed distance-like score; positive means class 1.

        ``block_rows`` evaluates the Gram matrix in row blocks (see
        :func:`repro.ml.kernels.gram_blocked`) so whole-population feature
        matrices never materialize an unbounded ``(N, S)`` intermediate;
        the scores are exactly those of the unblocked call.
        """
        if not self.is_fitted:
            raise RuntimeError("SVC is not fitted")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if block_rows is None:
            k = self._kernel(x, self._sv_x)
        else:
            k = gram_blocked(self._kernel, x, self._sv_x, block_rows)
        scores = k @ (self._alpha * self._sv_y) + self._b
        return scores[0] if single else scores

    def predict(self, x: np.ndarray, block_rows: int | None = None) -> np.ndarray:
        """Predicted labels in {0, 1} (the paper's Equation (1))."""
        scores = self.decision_function(x, block_rows=block_rows)
        return (np.atleast_1d(scores) > 0).astype(int)

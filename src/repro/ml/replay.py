"""Experience replay buffer for the DQN dispatcher."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) experience."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int, state_dim: int) -> None:
        if capacity < 1 or state_dim < 1:
            raise ValueError("capacity and state_dim must be positive")
        self.capacity = int(capacity)
        self.state_dim = int(state_dim)
        self._states = np.zeros((capacity, state_dim))
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity)
        self._next_states = np.zeros((capacity, state_dim))
        self._dones = np.zeros(capacity, dtype=bool)
        self._size = 0
        self._head = 0

    def __len__(self) -> int:
        return self._size

    def push(self, tr: Transition) -> None:
        if tr.state.shape != (self.state_dim,) or tr.next_state.shape != (self.state_dim,):
            raise ValueError(f"states must have shape ({self.state_dim},)")
        i = self._head
        self._states[i] = tr.state
        self._actions[i] = tr.action
        self._rewards[i] = tr.reward
        self._next_states[i] = tr.next_state
        self._dones[i] = tr.done
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniformly sample a batch: (states, actions, rewards, next_states,
        dones)."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        idx = rng.integers(0, self._size, size=batch_size)
        return (
            self._states[idx],
            self._actions[idx],
            self._rewards[idx],
            self._next_states[idx],
            self._dones[idx],
        )

    def views(self) -> dict[str, np.ndarray]:
        """Live array views of the populated region (no copy).

        The views share memory with the buffer: the training sentinel's
        integrity screens read them in place, and the chaos harness's
        fault injectors corrupt rows through them.  Shapes follow
        ``len(self)``, so an empty buffer yields empty views.
        """
        n = self._size
        return {
            "states": self._states[:n],
            "actions": self._actions[:n],
            "rewards": self._rewards[:n],
            "next_states": self._next_states[:n],
            "dones": self._dones[:n],
        }

    # -- checkpointing --------------------------------------------------------

    def get_state(self) -> dict[str, np.ndarray]:
        """Full buffer contents as an npz-ready array dict."""
        return {
            "states": self._states.copy(),
            "actions": self._actions.copy(),
            "rewards": self._rewards.copy(),
            "next_states": self._next_states.copy(),
            "dones": self._dones.copy(),
            "meta": np.array(
                [self.capacity, self.state_dim, self._size, self._head],
                dtype=np.int64,
            ),
        }

    def set_state(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Restore contents captured by :meth:`get_state`."""
        capacity, state_dim, size, head = (int(v) for v in arrays["meta"])
        if capacity != self.capacity or state_dim != self.state_dim:
            raise ValueError(
                f"buffer state is {capacity}x{state_dim}, "
                f"this buffer is {self.capacity}x{self.state_dim}"
            )
        if not (0 <= size <= capacity and 0 <= head < capacity):
            raise ValueError("buffer state has inconsistent size/head")
        self._states[...] = arrays["states"]
        self._actions[...] = arrays["actions"]
        self._rewards[...] = arrays["rewards"]
        self._next_states[...] = arrays["next_states"]
        self._dones[...] = arrays["dones"]
        self._size = size
        self._head = head

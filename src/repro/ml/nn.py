"""A small dense neural network with Adam, in plain numpy.

This is the DNN function approximator of the paper's RL dispatcher (the
paper points to Pensieve [24] for the technique).  It supports exactly what
a DQN needs: forward passes, mean-squared / Huber loss on *selected output
units* (Q-values of taken actions), backprop, and Adam updates.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np


@dataclass
class AdamState:
    """Adam accumulator for one parameter tensor."""

    m: np.ndarray
    v: np.ndarray
    t: int = 0

    @classmethod
    def like(cls, w: np.ndarray) -> "AdamState":
        return cls(np.zeros_like(w), np.zeros_like(w))


@dataclass
class _Layer:
    w: np.ndarray
    b: np.ndarray
    adam_w: AdamState = field(init=False)
    adam_b: AdamState = field(init=False)

    def __post_init__(self) -> None:
        self.adam_w = AdamState.like(self.w)
        self.adam_b = AdamState.like(self.b)


class MLP:
    """Fully-connected ReLU network with a linear output layer."""

    def __init__(
        self,
        layer_sizes: list[int] | tuple[int, ...],
        learning_rate: float = 1e-3,
        huber_delta: float | None = 1.0,
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if any(s <= 0 for s in layer_sizes):
            raise ValueError("layer sizes must be positive")
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.learning_rate = float(learning_rate)
        self.huber_delta = huber_delta
        #: Opt-in gradient diagnostics for the training sentinel.  Off by
        #: default so the hot path pays nothing; enabling it only *reads*
        #: gradients (never alters the update), so the weight trajectory
        #: is bit-identical either way.
        self.grad_stats_enabled = False
        #: Largest |gradient| component seen in the most recent backward
        #: pass (0.0 until :attr:`grad_stats_enabled` is set).
        self.last_grad_max = 0.0
        rng = np.random.default_rng(seed)
        self.layers: list[_Layer] = []
        for fan_in, fan_out in zip(self.layer_sizes, self.layer_sizes[1:]):
            # He initialization, appropriate for ReLU hidden units.
            w = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
            self.layers.append(_Layer(w, np.zeros(fan_out)))

    @property
    def input_dim(self) -> int:
        return self.layer_sizes[0]

    @property
    def output_dim(self) -> int:
        return self.layer_sizes[-1]

    # -- forward -------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batch forward pass: (N, in) -> (N, out)."""
        a, _ = self._forward_cached(np.asarray(x, dtype=float))
        return a[-1]

    def predict_one(self, x: np.ndarray) -> np.ndarray:
        """Single-sample forward pass: (in,) -> (out,)."""
        return self.forward(np.asarray(x, dtype=float)[None, :])[0]

    def _forward_cached(self, x: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"expected input of shape (N, {self.input_dim})")
        activations = [x]
        pre = []
        a = x
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            z = a @ layer.w + layer.b
            pre.append(z)
            a = z if i == last else np.maximum(z, 0.0)
            activations.append(a)
        return activations, pre

    # -- training --------------------------------------------------------------

    def train_step(
        self,
        x: np.ndarray,
        target: np.ndarray,
        output_mask: np.ndarray | None = None,
    ) -> float:
        """One gradient step toward ``target``; returns the loss.

        ``output_mask`` (N, out), when given, restricts the loss to selected
        output units — the DQN update touches only the Q-value of the action
        actually taken.
        """
        x = np.asarray(x, dtype=float)
        target = np.asarray(target, dtype=float)
        activations, pre = self._forward_cached(x)
        out = activations[-1]
        if target.shape != out.shape:
            raise ValueError("target shape must match network output shape")
        diff = out - target
        if output_mask is not None:
            if output_mask.shape != out.shape:
                raise ValueError("output_mask shape must match network output shape")
            diff = diff * output_mask
            denom = max(1.0, float(output_mask.sum()))
        else:
            denom = float(diff.size)

        if self.huber_delta is None:
            loss = float((diff**2).sum() / (2.0 * denom))
            grad_out = diff / denom
        else:
            d = self.huber_delta
            absd = np.abs(diff)
            quad = np.minimum(absd, d)
            loss = float((0.5 * quad**2 + d * (absd - quad)).sum() / denom)
            grad_out = np.clip(diff, -d, d) / denom

        self._backward(activations, pre, grad_out)
        return loss

    def _backward(
        self, activations: list[np.ndarray], pre: list[np.ndarray], grad_out: np.ndarray
    ) -> None:
        grad = grad_out
        for i in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[i]
            if i != len(self.layers) - 1:
                grad = grad * (pre[i] > 0.0)
            gw = activations[i].T @ grad
            gb = grad.sum(axis=0)
            grad = grad @ layer.w.T
            self._adam_update(layer.w, gw, layer.adam_w)
            self._adam_update(layer.b, gb, layer.adam_b)
        if self.grad_stats_enabled:
            # The loop leaves gw/gb bound to the INPUT layer's gradients,
            # through which the chain rule funnels every downstream NaN
            # or blow-up (``grad @ w.T`` propagates NaN, and the ReLU
            # mask multiplies by 0.0 which keeps it) — so screening this
            # one layer sees them all at a fraction of the cost.
            # max(max, -min) == |·| peak without an np.abs temporary; a
            # NaN poisons the gw reductions, which come first, so the
            # builtin max returns it rather than masking it.
            self.last_grad_max = max(
                float(gw.max()), -float(gw.min()),
                float(gb.max()), -float(gb.min()),
            )

    def _adam_update(
        self,
        w: np.ndarray,
        g: np.ndarray,
        state: AdamState,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        state.t += 1
        state.m = beta1 * state.m + (1 - beta1) * g
        state.v = beta2 * state.v + (1 - beta2) * g**2
        m_hat = state.m / (1 - beta1**state.t)
        v_hat = state.v / (1 - beta2**state.t)
        w -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # -- parameter transfer -------------------------------------------------------

    def get_weights(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(layer.w.copy(), layer.b.copy()) for layer in self.layers]

    def set_weights(self, weights: list[tuple[np.ndarray, np.ndarray]]) -> None:
        if len(weights) != len(self.layers):
            raise ValueError("weight list length mismatch")
        for layer, (w, b) in zip(self.layers, weights):
            if layer.w.shape != w.shape or layer.b.shape != b.shape:
                raise ValueError("weight shape mismatch")
            layer.w[...] = w
            layer.b[...] = b

    def clone(self) -> "MLP":
        """Structural copy with identical weights (fresh Adam state)."""
        other = MLP(self.layer_sizes, self.learning_rate, self.huber_delta)
        other.set_weights(self.get_weights())
        return other

    # -- checkpointing ------------------------------------------------------------

    def get_train_state(self) -> dict[str, np.ndarray]:
        """Weights *and* Adam accumulators as an npz-ready array dict.

        ``get_weights`` suffices to reproduce inference; resuming training
        bit-identically additionally needs every optimizer moment and step
        counter, since Adam's bias correction depends on ``t``.
        """
        arrays: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            arrays[f"w{i}"] = layer.w.copy()
            arrays[f"b{i}"] = layer.b.copy()
            for tag, state in (("w", layer.adam_w), ("b", layer.adam_b)):
                arrays[f"adam_{tag}{i}_m"] = state.m.copy()
                arrays[f"adam_{tag}{i}_v"] = state.v.copy()
                arrays[f"adam_{tag}{i}_t"] = np.array([state.t], dtype=np.int64)
        return arrays

    def set_train_state(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Restore weights and Adam state from :meth:`get_train_state`."""
        for i, layer in enumerate(self.layers):
            try:
                w, b = arrays[f"w{i}"], arrays[f"b{i}"]
            except KeyError as exc:
                raise ValueError(f"train state is missing layer {i}") from exc
            if layer.w.shape != w.shape or layer.b.shape != b.shape:
                raise ValueError("train state layer shape mismatch")
            layer.w[...] = w
            layer.b[...] = b
            for tag, state in (("w", layer.adam_w), ("b", layer.adam_b)):
                m = arrays[f"adam_{tag}{i}_m"]
                v = arrays[f"adam_{tag}{i}_v"]
                if m.shape != state.m.shape or v.shape != state.v.shape:
                    raise ValueError("train state Adam shape mismatch")
                state.m = np.array(m, dtype=float)
                state.v = np.array(v, dtype=float)
                state.t = int(arrays[f"adam_{tag}{i}_t"][0])
